package batch_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"wbcast/internal/batch"
	"wbcast/internal/core"
	"wbcast/internal/fastcast"
	"wbcast/internal/ftskeen"
	"wbcast/internal/harness"
	"wbcast/internal/mcast"
	"wbcast/internal/sim"
)

// protocols under test: the three fault-tolerant implementations, all of
// which unpack batch envelopes on their delivery paths.
func protocolsUnderTest() []harness.Protocol {
	return []harness.Protocol{core.Protocol{}, fastcast.Protocol{}, ftskeen.Protocol{}}
}

// deliverySeq returns, per process, the payload IDs it delivered in order.
func deliverySeq(c *harness.Cluster) map[mcast.ProcessID][]mcast.MsgID {
	out := make(map[mcast.ProcessID][]mcast.MsgID)
	for _, rec := range c.Sim.Deliveries() {
		out[rec.Proc] = append(out[rec.Proc], rec.D.Msg.ID)
	}
	return out
}

// runSequentialWorkload submits n payloads from one client to groups
// {0, 1} at 1ms intervals and runs to quiescence.
func runSequentialWorkload(t *testing.T, p harness.Protocol, batching *batch.Options, n int) *harness.Cluster {
	t.Helper()
	c, err := harness.NewCluster(p, harness.Options{
		Groups: 2, GroupSize: 3, NumClients: 1,
		Latency:  sim.Uniform(10 * time.Millisecond),
		Batching: batching,
	})
	if err != nil {
		t.Fatal(err)
	}
	dest := mcast.NewGroupSet(0, 1)
	for i := 0; i < n; i++ {
		c.Submit(time.Duration(i)*time.Millisecond, 0, dest, []byte(fmt.Sprintf("payload-%03d", i)))
	}
	c.Sim.RunQuiescent(30 * time.Second)
	return c
}

// TestBatchedOrderMatchesUnbatched is the batching-transparency theorem in
// test form: for a deterministic workload, the batched run delivers
// exactly the same per-payload sequence at every replica as the unbatched
// run, for every protocol.
func TestBatchedOrderMatchesUnbatched(t *testing.T) {
	const n = 60
	for _, p := range protocolsUnderTest() {
		t.Run(p.Name(), func(t *testing.T) {
			plain := runSequentialWorkload(t, p, nil, n)
			batched := runSequentialWorkload(t, p, &batch.Options{
				MaxMsgs: 8, MaxDelay: 5 * time.Millisecond, Window: 2,
			}, n)

			plainSeq := deliverySeq(plain)
			batchedSeq := deliverySeq(batched)
			if len(plainSeq) == 0 {
				t.Fatal("unbatched run delivered nothing")
			}
			for pid, want := range plainSeq {
				if len(want) != n {
					t.Fatalf("p%d delivered %d of %d payloads unbatched", pid, len(want), n)
				}
				if got := batchedSeq[pid]; !reflect.DeepEqual(got, want) {
					t.Errorf("p%d: batched order diverges from unbatched\nbatched:   %v\nunbatched: %v", pid, got, want)
				}
			}
			// Both runs must satisfy the full multicast specification.
			for _, errs := range map[string][]error{
				"plain": plain.Check(true), "batched": batched.Check(true),
			} {
				for _, err := range errs {
					t.Error(err)
				}
			}
			// The batched run must actually have batched: fewer protocol
			// messages than the unbatched run.
			if bs, ps := batched.Sim.TotalSent(), plain.Sim.TotalSent(); bs >= ps {
				t.Errorf("batched run sent %d protocol messages, unbatched %d — no amortisation", bs, ps)
			}
		})
	}
}

// TestBatchedRandomWorkload runs a concurrent multi-client, multi-bucket
// random workload under batching and verifies the full specification:
// Validity, Integrity, Ordering, Termination, the (GTS, Sub) invariants
// and the genuineness audit.
func TestBatchedRandomWorkload(t *testing.T) {
	for _, p := range protocolsUnderTest() {
		t.Run(p.Name(), func(t *testing.T) {
			c, err := harness.NewCluster(p, harness.Options{
				Groups: 3, GroupSize: 3, NumClients: 4,
				Latency: sim.Uniform(5 * time.Millisecond),
				Seed:    42,
				Batching: &batch.Options{
					MaxMsgs: 4, MaxDelay: 3 * time.Millisecond, Window: 2,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			c.RandomWorkload(rng, 80, 3, 150*time.Millisecond)
			c.Sim.RunQuiescent(60 * time.Second)
			for _, err := range c.Check(true) {
				t.Error(err)
			}
			if got := c.CollectHistory().NumDeliveries(); got == 0 {
				t.Fatal("no deliveries recorded")
			}
		})
	}
}

// TestBatchedCompletionSemantics verifies the client-facing contract under
// batching: every submitted payload's completion fires exactly once.
func TestBatchedCompletionSemantics(t *testing.T) {
	c, err := harness.NewCluster(core.Protocol{}, harness.Options{
		Groups: 2, GroupSize: 3, NumClients: 2,
		Latency:  sim.Uniform(5 * time.Millisecond),
		Batching: &batch.Options{MaxMsgs: 4, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	completions := make(map[mcast.MsgID]int)
	c.OnComplete(func(id mcast.MsgID) { completions[id]++ })
	var ids []mcast.MsgID
	dest := mcast.NewGroupSet(0, 1)
	for i := 0; i < 10; i++ {
		ids = append(ids, c.Submit(time.Duration(i)*time.Millisecond, i%2, dest, []byte{byte(i)}))
	}
	c.Sim.RunQuiescent(30 * time.Second)
	for _, id := range ids {
		if completions[id] != 1 {
			t.Errorf("payload %v completed %d times, want 1", id, completions[id])
		}
	}
}

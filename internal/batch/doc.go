// Package batch implements message batching and pipelining for atomic
// multicast: many application payloads destined for the same group set are
// aggregated into a single protocol-level multicast (amortising the
// fixed per-message ordering cost — timestamp proposals, ACK quorums, a
// delivery-queue pass), and unpacked back into individual ordered
// deliveries on the far side.
//
// The subsystem has three parts:
//
//   - Options and Client: a client-side accumulator with size-, count- and
//     latency-bound flush triggers plus a pipelining window bounding how
//     many batches per destination set may be in flight concurrently.
//   - MakeBatchID/IsBatchID: a reserved slice of the per-sender MsgID
//     sequence space that marks batch envelopes, so the delivery path can
//     recognise them without sniffing payloads.
//   - ExpandInto: the delivery-side unpacker used by every protocol
//     (white-box core, FT-Skeen, FastCast, Skeen), which turns one batch
//     delivery into per-payload deliveries sharing the batch's GTS and
//     sub-sequenced by their position in the batch.
//
// Ordering: all payloads of a batch inherit the batch's global timestamp
// and are delivered in batch order, so the per-payload total order is the
// lexicographic (GTS, Sub) order. Because every replica decodes the same
// batch bytes, all replicas agree on the sub-order by construction.
//
// # Layering
//
// batch sits between the client layer (internal/client) and the
// protocols: it wraps submissions into envelope multicasts on the way in,
// and every protocol's delivery path unpacks envelopes via ExpandInto on
// the way out. The public Config.Batching knob configures it.
package batch

package batch

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"wbcast/internal/client"
	"wbcast/internal/mcast"
	"wbcast/internal/msgs"
	"wbcast/internal/node"
	"wbcast/internal/obs"
)

// Client is a batching, pipelining multicast client: a node.Handler that
// accumulates submitted payloads per destination set, flushes them as
// batch envelopes through an embedded protocol client (client.Client), and
// reports completion per payload. It is a drop-in replacement for
// client.Client wherever a runtime hosts one.
type Client struct {
	pid  mcast.ProcessID
	opts Options
	// onComplete is invoked once per payload, in batch order, when the
	// batch carrying it has been delivered by every destination group.
	onComplete func(id mcast.MsgID)

	inner *client.Client

	// obs: the batching layer measures payload-level end-to-end latency
	// and the flush-trigger breakdown itself; the embedded client gets no
	// handle, so envelope-level submits/completions do not pollute the
	// end-to-end histogram.
	obs   *obs.Client
	obsAt map[mcast.MsgID]time.Duration

	buckets  map[string]*bucket
	byToken  []*bucket
	flights  map[mcast.MsgID]*flight
	batchSeq uint32

	buffered  int // payloads currently accumulated across buckets
	completed int // payloads completed

	// batchesSent is read concurrently by benchmark reporters.
	batchesSent atomic.Int64

	// curFX holds the Effects sink of the Handle call in progress, so the
	// inner client's OnComplete callback (which fires during inner.Handle)
	// can emit follow-up flushes. Handlers are never called concurrently.
	curFX *node.Effects
}

// bucket accumulates payloads for one destination set.
type bucket struct {
	token uint32
	dest  mcast.GroupSet
	// entries/bytes are the accumulated, not-yet-flushed payloads.
	entries []msgs.BatchEntry
	bytes   int
	// inflight counts unfinished batch envelopes for this destination set
	// (the pipelining window occupancy).
	inflight int
	// pending records that a flush trigger fired while the window was
	// full: everything buffered is due and ships as completions free
	// window slots.
	pending bool
	// timerArmed tracks whether a MaxDelay flush timer is outstanding.
	timerArmed bool
}

// flight is one batch envelope in flight.
type flight struct {
	b   *bucket
	ids []mcast.MsgID
}

// Config parametrises New.
type Config struct {
	// PID is the client's process ID (must not collide with replicas).
	PID mcast.ProcessID
	// Contacts supplies the MULTICAST targets per group for batch
	// envelopes (see client.Config.Contacts).
	Contacts client.Contacts
	// RetryContacts optionally widens re-send targets (see
	// client.Config.RetryContacts).
	RetryContacts client.Contacts
	// Retry is the envelope re-send interval; zero disables retries.
	Retry time.Duration
	// OnComplete, if non-nil, is invoked once per payload — in batch
	// order — when every destination group has delivered the batch
	// carrying it.
	OnComplete func(id mcast.MsgID)
	// Obs is the client's instrumentation handle; nil disables metrics
	// and tracing.
	Obs *obs.Client
	// Options are the flush triggers and pipelining window.
	Options Options
}

// NewHandler builds the client handler for a runtime: a batching Client
// when opts is non-nil, a plain protocol client otherwise. It is the one
// construction point shared by the public API, the test harness and the
// benchmarks, so batched and unbatched deployments stay field-for-field
// identical apart from the accumulator.
func NewHandler(cfg client.Config, opts *Options) node.Handler {
	if opts == nil {
		return client.New(cfg)
	}
	return New(Config{
		PID:           cfg.PID,
		Contacts:      cfg.Contacts,
		RetryContacts: cfg.RetryContacts,
		Retry:         cfg.Retry,
		OnComplete:    cfg.OnComplete,
		Obs:           cfg.Obs,
		Options:       *opts,
	})
}

// New builds a batching client.
func New(cfg Config) *Client {
	c := &Client{
		pid:        cfg.PID,
		opts:       cfg.Options.normalize(),
		onComplete: cfg.OnComplete,
		obs:        cfg.Obs,
		buckets:    make(map[string]*bucket),
		flights:    make(map[mcast.MsgID]*flight),
	}
	if cfg.Obs != nil {
		c.obsAt = make(map[mcast.MsgID]time.Duration)
	}
	c.inner = client.New(client.Config{
		PID:           cfg.PID,
		Contacts:      cfg.Contacts,
		RetryContacts: cfg.RetryContacts,
		Retry:         cfg.Retry,
		OnComplete:    c.onBatchDone,
	})
	return c
}

// ID implements node.Handler.
func (c *Client) ID() mcast.ProcessID { return c.pid }

// Buffered returns the number of payloads accumulated but not yet flushed.
func (c *Client) Buffered() int { return c.buffered }

// Completed returns the number of payloads whose batch has completed.
func (c *Client) Completed() int { return c.completed }

// InflightBatches returns the number of batch envelopes awaiting replies.
func (c *Client) InflightBatches() int { return c.inner.Inflight() }

// BatchesSent returns how many batch envelopes have been flushed. It is
// safe to call concurrently with the handler (benchmark reporters sample
// it from other goroutines).
func (c *Client) BatchesSent() int64 { return c.batchesSent.Load() }

// Handle implements node.Handler: Submits are accumulated, TimerBatch
// expiries flush, and everything else (replies, retry timers, Start) is
// forwarded to the embedded protocol client.
func (c *Client) Handle(in node.Input, fx *node.Effects) {
	c.curFX = fx
	defer func() { c.curFX = nil }()
	switch in := in.(type) {
	case node.Submit:
		c.submit(in.Msg, fx)
	case node.Timer:
		if in.Kind == node.TimerBatch {
			c.onFlushTimer(in.Data, fx)
			return
		}
		if in.Kind == node.TimerClient {
			// The inner client is about to re-send this envelope iff it is
			// still in flight (its retry logic); count it here because the
			// inner client carries no obs handle.
			if _, inflight := c.flights[mcast.MsgID(in.Data)]; inflight {
				c.obs.OnRetry(mcast.MsgID(in.Data))
			}
		}
		c.inner.Handle(in, fx)
	default:
		c.inner.Handle(in, fx)
	}
}

// submit accumulates one payload and fires any size/count flush trigger.
func (c *Client) submit(m mcast.AppMsg, fx *node.Effects) {
	b := c.bucket(m.Dest)
	if c.obs != nil {
		var at time.Duration
		c.obs.OnSubmit(m.ID, &at)
		c.obsAt[m.ID] = at
	}
	payload := make([]byte, len(m.Payload))
	copy(payload, m.Payload)
	b.entries = append(b.entries, msgs.BatchEntry{ID: m.ID, Payload: payload})
	b.bytes += len(payload)
	c.buffered++
	c.drain(b, fx)
	if len(b.entries) > 0 && !b.timerArmed {
		fx.SetTimer(c.opts.MaxDelay, node.TimerBatch, uint64(b.token))
		b.timerArmed = true
	}
}

// onFlushTimer handles a MaxDelay expiry: everything buffered for the
// bucket is now due, regardless of size.
func (c *Client) onFlushTimer(token uint64, fx *node.Effects) {
	if token >= uint64(len(c.byToken)) {
		return
	}
	b := c.byToken[token]
	b.timerArmed = false
	if len(b.entries) == 0 {
		return
	}
	b.pending = true
	c.drain(b, fx)
	if len(b.entries) > 0 && !b.timerArmed {
		// Window full: leftovers ship on completions (pending is set), but
		// re-arm so a lost reply cannot strand them without a deadline.
		fx.SetTimer(c.opts.MaxDelay, node.TimerBatch, uint64(b.token))
		b.timerArmed = true
	}
}

// drain flushes batches while a flush is due and the pipelining window has
// room. A flush is due when the bucket is pending (deadline passed) or the
// accumulated payloads reach a size trigger.
func (c *Client) drain(b *bucket, fx *node.Effects) {
	for len(b.entries) > 0 && b.inflight < c.opts.Window {
		if !b.pending && len(b.entries) < c.opts.MaxMsgs && b.bytes < c.opts.MaxBytes {
			return
		}
		c.flushOne(b, fx)
	}
	if len(b.entries) == 0 {
		b.pending = false
	}
}

// flushOne ships the oldest payloads of b as one batch envelope: entries
// are taken until the batch reaches MaxMsgs payloads or MaxBytes bytes
// (the bytes bound may overshoot by the final payload, mirroring the
// trigger in drain — a lone payload above MaxBytes still ships).
func (c *Client) flushOne(b *bucket, fx *node.Effects) {
	if c.obs != nil {
		switch {
		case len(b.entries) >= c.opts.MaxMsgs:
			c.obs.OnFlush(obs.FlushMsgs)
		case b.bytes >= c.opts.MaxBytes:
			c.obs.OnFlush(obs.FlushBytes)
		default:
			c.obs.OnFlush(obs.FlushDeadline)
		}
	}
	n, size := 0, 0
	for n < len(b.entries) && n < c.opts.MaxMsgs && size < c.opts.MaxBytes {
		size += len(b.entries[n].Payload)
		n++
	}
	entries := b.entries[:n:n]
	rest := make([]msgs.BatchEntry, len(b.entries)-n)
	copy(rest, b.entries[n:])
	b.entries = rest
	b.bytes -= size
	c.buffered -= n

	c.batchSeq++
	id := MakeBatchID(c.pid, c.batchSeq)
	ids := make([]mcast.MsgID, n)
	for i, e := range entries {
		ids[i] = e.ID
	}
	c.flights[id] = &flight{b: b, ids: ids}
	b.inflight++
	if len(b.entries) == 0 {
		b.pending = false
	}
	c.batchesSent.Add(1)
	env := mcast.AppMsg{ID: id, Dest: b.dest.Clone(), Payload: EncodePayload(entries)}
	c.inner.Handle(node.Submit{Msg: env}, fx)
}

// onBatchDone is the embedded client's completion callback: every
// destination group has delivered the batch envelope. It fires during
// c.inner.Handle, so c.curFX is the live Effects sink.
func (c *Client) onBatchDone(id mcast.MsgID) {
	fl, ok := c.flights[id]
	if !ok {
		return
	}
	delete(c.flights, id)
	fl.b.inflight--
	c.completed += len(fl.ids)
	if c.obs != nil {
		for _, pid := range fl.ids {
			c.obs.OnComplete(pid, c.obsAt[pid])
			delete(c.obsAt, pid)
		}
	}
	if c.onComplete != nil {
		for _, pid := range fl.ids {
			c.onComplete(pid)
		}
	}
	// A window slot is free: ship whatever is due.
	c.drain(fl.b, c.curFX)
}

// bucket returns (creating on demand) the accumulator for dest.
func (c *Client) bucket(dest mcast.GroupSet) *bucket {
	key := destKey(dest)
	b, ok := c.buckets[key]
	if !ok {
		b = &bucket{token: uint32(len(c.byToken)), dest: dest.Clone()}
		c.buckets[key] = b
		c.byToken = append(c.byToken, b)
	}
	return b
}

// destKey builds a compact map key for a normalised destination set.
func destKey(dest mcast.GroupSet) string {
	buf := make([]byte, 0, 4*len(dest))
	for _, g := range dest {
		buf = binary.AppendVarint(buf, int64(g))
	}
	return string(buf)
}

var _ node.Handler = (*Client)(nil)

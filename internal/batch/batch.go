package batch

import (
	"fmt"
	"time"

	"wbcast/internal/mcast"
	"wbcast/internal/msgs"
	"wbcast/internal/node"
	"wbcast/internal/wire"
)

// Options bounds the accumulator's flush triggers and the pipelining
// window. The zero value of any field selects its default; use New*Client
// constructors or normalize to apply them.
type Options struct {
	// MaxMsgs flushes a batch once it holds this many payloads
	// (default 64).
	MaxMsgs int
	// MaxBytes flushes a batch once its payloads total this many bytes
	// (default 64 KiB). A single payload larger than MaxBytes still ships,
	// as a singleton batch.
	MaxBytes int
	// MaxDelay bounds how long the first payload of a batch may wait
	// before the batch is flushed regardless of size (default 1ms). It is
	// the batching latency tax and must be positive: without it, a trickle
	// of payloads below the size triggers would buffer forever.
	MaxDelay time.Duration
	// Window is the maximum number of batches in flight per destination
	// set (default 4). When the window is full, further payloads
	// accumulate (growing batches) until a completion frees a slot —
	// the pipelining backpressure.
	Window int
}

// Default flush-trigger values.
const (
	DefaultMaxMsgs  = 64
	DefaultMaxBytes = 64 << 10
	DefaultMaxDelay = time.Millisecond
	DefaultWindow   = 4
)

// normalize fills defaulted fields.
func (o Options) normalize() Options {
	if o.MaxMsgs <= 0 {
		o.MaxMsgs = DefaultMaxMsgs
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = DefaultMaxDelay
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	return o
}

// batchSeqBit marks the per-sender sequence numbers reserved for batch
// envelopes. Payload sequence numbers are allocated from 1 upwards by
// clients and never reach it in any realistic run (2^31 submissions from
// one process).
const batchSeqBit uint32 = 1 << 31

// MakeBatchID packs a batch envelope ID for the given sender. The sender
// must be the batching client's own process ID: replicas send the
// per-group ClientReply for a batch to ID.Sender().
func MakeBatchID(sender mcast.ProcessID, seq uint32) mcast.MsgID {
	return mcast.MakeMsgID(sender, seq|batchSeqBit)
}

// IsBatchID reports whether id identifies a batch envelope rather than an
// individual application message.
func IsBatchID(id mcast.MsgID) bool { return id.Seq()&batchSeqBit != 0 }

// EncodePayload serialises the entries into the opaque AppMsg payload of a
// batch envelope, using the wire encoding of msgs.Batch.
func EncodePayload(entries []msgs.BatchEntry) []byte {
	buf, err := wire.Encode(nil, msgs.Batch{Entries: entries})
	if err != nil {
		// wire.Encode cannot fail for msgs.Batch; keep the invariant loud.
		panic("batch: encode: " + err.Error())
	}
	return buf
}

// DecodePayload parses a batch envelope payload produced by EncodePayload.
func DecodePayload(payload []byte) ([]msgs.BatchEntry, error) {
	m, err := wire.Decode(payload)
	if err != nil {
		return nil, err
	}
	b, ok := m.(msgs.Batch)
	if !ok {
		return nil, fmt.Errorf("batch: payload decodes to %v, not BATCH", m.Kind())
	}
	return b.Entries, nil
}

// ExpandInto appends d to fx, unpacking it first if it is a batch
// delivery: each payload becomes its own delivery carrying the original
// submission's message ID, the batch's destination set and global
// timestamp, and its position in the batch as the sub-sequence number.
// Protocol delivery paths call this instead of fx.Deliver, which keeps
// batched and unbatched deployments — and all protocol baselines —
// observationally identical at the application boundary.
func ExpandInto(fx *node.Effects, d mcast.Delivery) {
	if !IsBatchID(d.Msg.ID) {
		fx.Deliver(d)
		return
	}
	entries, err := DecodePayload(d.Msg.Payload)
	if err != nil {
		// A batch envelope this replica committed but cannot decode is a
		// programming error on the encode side; surface the raw delivery
		// rather than silently dropping payloads.
		fx.Deliver(d)
		return
	}
	for i, e := range entries {
		fx.Deliver(mcast.Delivery{
			Msg: mcast.AppMsg{ID: e.ID, Dest: d.Msg.Dest, Payload: e.Payload},
			GTS: d.GTS,
			Sub: i,
		})
	}
}

// Expand returns the per-payload deliveries of d (see ExpandInto), or d
// itself when it is not a batch. Runtimes that post-process delivery
// callbacks (e.g. tcpnet) use it.
func Expand(d mcast.Delivery) []mcast.Delivery {
	var fx node.Effects
	ExpandInto(&fx, d)
	return fx.Deliveries
}

// Conflicts lifts a payload-level conflict relation to whole protocol
// messages: batch envelopes are expanded and two messages conflict iff any
// pair of their payloads does. An envelope that fails to decode
// conservatively conflicts with everything (a safe over-approximation —
// see mcast.ConflictRelation). A nil rel yields nil (all-conflict).
func Conflicts(rel mcast.ConflictRelation) mcast.MsgConflicts {
	if rel == nil {
		return nil
	}
	payloadsOf := func(m mcast.AppMsg) ([][]byte, bool) {
		if !IsBatchID(m.ID) {
			return [][]byte{m.Payload}, true
		}
		entries, err := DecodePayload(m.Payload)
		if err != nil {
			return nil, false
		}
		ps := make([][]byte, len(entries))
		for i, e := range entries {
			ps[i] = e.Payload
		}
		return ps, true
	}
	return func(a, b mcast.AppMsg) bool {
		pa, ok := payloadsOf(a)
		if !ok {
			return true
		}
		pb, ok := payloadsOf(b)
		if !ok {
			return true
		}
		for _, x := range pa {
			for _, y := range pb {
				if rel(x, y) {
					return true
				}
			}
		}
		return false
	}
}

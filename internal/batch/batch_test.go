package batch_test

import (
	"reflect"
	"testing"
	"time"

	"wbcast/internal/batch"
	"wbcast/internal/mcast"
	"wbcast/internal/msgs"
	"wbcast/internal/node"
)

const clientPID = mcast.ProcessID(100)

// testClient builds a batching client whose envelopes are sent to the
// first member of each destination group, recording payload completions.
func testClient(opts batch.Options, completed *[]mcast.MsgID) *batch.Client {
	return batch.New(batch.Config{
		PID:      clientPID,
		Contacts: func(g mcast.GroupID) []mcast.ProcessID { return []mcast.ProcessID{mcast.ProcessID(g)} },
		OnComplete: func(id mcast.MsgID) {
			if completed != nil {
				*completed = append(*completed, id)
			}
		},
		Options: opts,
	})
}

func submit(t *testing.T, c *batch.Client, fx *node.Effects, seq uint32, payload string, groups ...mcast.GroupID) mcast.MsgID {
	t.Helper()
	id := mcast.MakeMsgID(clientPID, seq)
	c.Handle(node.Submit{Msg: mcast.AppMsg{
		ID:      id,
		Dest:    mcast.NewGroupSet(groups...),
		Payload: []byte(payload),
	}}, fx)
	return id
}

// envelopes extracts the distinct batch envelopes flushed into fx, in
// flush order.
func envelopes(t *testing.T, fx *node.Effects) []mcast.AppMsg {
	t.Helper()
	var out []mcast.AppMsg
	seen := map[mcast.MsgID]bool{}
	for _, s := range fx.Sends {
		mc, ok := s.Msg.(msgs.Multicast)
		if !ok {
			continue
		}
		if !batch.IsBatchID(mc.M.ID) {
			t.Fatalf("client flushed non-batch multicast %v", mc.M.ID)
		}
		if !seen[mc.M.ID] {
			seen[mc.M.ID] = true
			out = append(out, mc.M)
		}
	}
	return out
}

// reply feeds the per-group delivery replies for envelope m back into the
// client, completing it.
func reply(c *batch.Client, fx *node.Effects, m mcast.AppMsg) {
	for _, g := range m.Dest {
		c.Handle(node.Recv{From: mcast.ProcessID(g), Msg: msgs.ClientReply{ID: m.ID, Group: g}}, fx)
	}
}

func TestIDHelpers(t *testing.T) {
	id := batch.MakeBatchID(42, 7)
	if !batch.IsBatchID(id) {
		t.Error("MakeBatchID result not recognised as batch ID")
	}
	if id.Sender() != 42 {
		t.Errorf("batch ID sender = %v, want 42 (replies must route to the client)", id.Sender())
	}
	if batch.IsBatchID(mcast.MakeMsgID(42, 7)) {
		t.Error("ordinary message ID recognised as batch ID")
	}
	if batch.MakeBatchID(42, 7) == batch.MakeBatchID(42, 8) {
		t.Error("distinct batch seqs collide")
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	entries := []msgs.BatchEntry{
		{ID: mcast.MakeMsgID(9, 1), Payload: []byte("alpha")},
		{ID: mcast.MakeMsgID(9, 2), Payload: []byte("")},
		{ID: mcast.MakeMsgID(10, 1), Payload: []byte{0, 1, 2, 255}},
	}
	got, err := batch.DecodePayload(batch.EncodePayload(entries))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Errorf("round trip mismatch:\n in: %v\nout: %v", entries, got)
	}
	if _, err := batch.DecodePayload([]byte("not a batch")); err == nil {
		t.Error("garbage payload decoded successfully")
	}
}

func TestCountTrigger(t *testing.T) {
	var fx node.Effects
	c := testClient(batch.Options{MaxMsgs: 3, MaxDelay: time.Hour}, nil)
	ids := []mcast.MsgID{
		submit(t, c, &fx, 1, "a", 0, 1),
		submit(t, c, &fx, 2, "b", 0, 1),
	}
	if env := envelopes(t, &fx); len(env) != 0 {
		t.Fatalf("flushed %d envelopes below the count trigger", len(env))
	}
	if c.Buffered() != 2 {
		t.Errorf("Buffered = %d, want 2", c.Buffered())
	}
	ids = append(ids, submit(t, c, &fx, 3, "c", 0, 1))
	env := envelopes(t, &fx)
	if len(env) != 1 {
		t.Fatalf("flushed %d envelopes at the count trigger, want 1", len(env))
	}
	entries, err := batch.DecodePayload(env[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("envelope has %d entries, want 3", len(entries))
	}
	for i, e := range entries {
		if e.ID != ids[i] {
			t.Errorf("entry %d = %v, want %v (submission order)", i, e.ID, ids[i])
		}
	}
	if !env[0].Dest.Equal(mcast.NewGroupSet(0, 1)) {
		t.Errorf("envelope dest = %v", env[0].Dest)
	}
	if c.Buffered() != 0 || c.BatchesSent() != 1 {
		t.Errorf("Buffered=%d BatchesSent=%d", c.Buffered(), c.BatchesSent())
	}
}

func TestBytesTrigger(t *testing.T) {
	var fx node.Effects
	c := testClient(batch.Options{MaxMsgs: 1000, MaxBytes: 10, MaxDelay: time.Hour}, nil)
	submit(t, c, &fx, 1, "abcd", 0)
	if env := envelopes(t, &fx); len(env) != 0 {
		t.Fatal("flushed below the bytes trigger")
	}
	submit(t, c, &fx, 2, "efghijk", 0) // total 11 ≥ 10
	env := envelopes(t, &fx)
	if len(env) != 1 {
		t.Fatalf("flushed %d envelopes at the bytes trigger, want 1", len(env))
	}
	entries, err := batch.DecodePayload(env[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("envelope has %d entries, want 2", len(entries))
	}
}

func TestDelayTrigger(t *testing.T) {
	var fx node.Effects
	c := testClient(batch.Options{MaxMsgs: 1000, MaxDelay: 5 * time.Millisecond}, nil)
	submit(t, c, &fx, 1, "lonely", 0)
	if env := envelopes(t, &fx); len(env) != 0 {
		t.Fatal("flushed before the delay trigger")
	}
	var timer *node.SetTimer
	for i := range fx.Timers {
		if fx.Timers[i].Kind == node.TimerBatch {
			timer = &fx.Timers[i]
		}
	}
	if timer == nil {
		t.Fatal("no TimerBatch armed for the first buffered payload")
	}
	if timer.After != 5*time.Millisecond {
		t.Errorf("flush timer after %v, want 5ms", timer.After)
	}
	var fx2 node.Effects
	c.Handle(node.Timer{Kind: node.TimerBatch, Data: timer.Data}, &fx2)
	env := envelopes(t, &fx2)
	if len(env) != 1 {
		t.Fatalf("timer expiry flushed %d envelopes, want 1", len(env))
	}
	entries, _ := batch.DecodePayload(env[0].Payload)
	if len(entries) != 1 || string(entries[0].Payload) != "lonely" {
		t.Errorf("entries = %v", entries)
	}
	// A stale expiry for the now-empty bucket must be a no-op.
	var fx3 node.Effects
	c.Handle(node.Timer{Kind: node.TimerBatch, Data: timer.Data}, &fx3)
	if env := envelopes(t, &fx3); len(env) != 0 {
		t.Error("stale timer flushed an empty bucket")
	}
}

func TestSeparateBucketsPerDestinationSet(t *testing.T) {
	var fx node.Effects
	c := testClient(batch.Options{MaxMsgs: 2, MaxDelay: time.Hour}, nil)
	submit(t, c, &fx, 1, "a", 0)
	submit(t, c, &fx, 2, "b", 0, 1)
	if env := envelopes(t, &fx); len(env) != 0 {
		t.Fatal("payloads with different destination sets shared a batch")
	}
	submit(t, c, &fx, 3, "c", 0)
	env := envelopes(t, &fx)
	if len(env) != 1 || !env[0].Dest.Equal(mcast.NewGroupSet(0)) {
		t.Fatalf("envelopes = %v", env)
	}
}

func TestWindowBackpressureAndCompletion(t *testing.T) {
	var completed []mcast.MsgID
	var fx node.Effects
	c := testClient(batch.Options{MaxMsgs: 2, MaxDelay: time.Hour, Window: 1}, &completed)
	first := []mcast.MsgID{
		submit(t, c, &fx, 1, "a", 0, 1),
		submit(t, c, &fx, 2, "b", 0, 1),
	}
	env := envelopes(t, &fx)
	if len(env) != 1 {
		t.Fatalf("first batch: %d envelopes", len(env))
	}
	// Window of 1 is occupied: further due payloads must accumulate.
	second := []mcast.MsgID{
		submit(t, c, &fx, 3, "c", 0, 1),
		submit(t, c, &fx, 4, "d", 0, 1),
		submit(t, c, &fx, 5, "e", 0, 1),
	}
	if got := envelopes(t, &fx); len(got) != 1 {
		t.Fatalf("window full but %d envelopes flushed", len(got))
	}
	if c.Buffered() != 3 || c.InflightBatches() != 1 {
		t.Fatalf("Buffered=%d InflightBatches=%d", c.Buffered(), c.InflightBatches())
	}
	// Completing the first batch frees the slot: the backlog ships in the
	// same handler call, honouring MaxMsgs per envelope.
	var fx2 node.Effects
	reply(c, &fx2, env[0])
	if !reflect.DeepEqual(completed, first) {
		t.Errorf("completions = %v, want %v", completed, first)
	}
	env2 := envelopes(t, &fx2)
	if len(env2) != 1 {
		t.Fatalf("completion flushed %d envelopes, want 1 (window is 1)", len(env2))
	}
	entries, _ := batch.DecodePayload(env2[0].Payload)
	if len(entries) != 2 || entries[0].ID != second[0] || entries[1].ID != second[1] {
		t.Errorf("second envelope entries = %v, want %v", entries, second[:2])
	}
	// The trailing payload is below every size trigger: completing the
	// second batch must NOT ship it early — its deadline is MaxDelay.
	var fx3 node.Effects
	reply(c, &fx3, env2[0])
	if got := envelopes(t, &fx3); len(got) != 0 {
		t.Fatalf("sub-trigger leftover shipped on completion: %v", got)
	}
	if c.Buffered() != 1 {
		t.Fatalf("Buffered = %d, want 1", c.Buffered())
	}
	var token uint64
	found := false
	for _, tm := range fx.Timers {
		if tm.Kind == node.TimerBatch {
			token, found = tm.Data, true
		}
	}
	if !found {
		t.Fatal("no flush timer armed for the bucket")
	}
	c.Handle(node.Timer{Kind: node.TimerBatch, Data: token}, &fx3)
	env3 := envelopes(t, &fx3)
	if len(env3) != 1 {
		t.Fatalf("deadline flush shipped %d envelopes, want 1", len(env3))
	}
	var fx4 node.Effects
	reply(c, &fx4, env3[0])
	if c.Buffered() != 0 || c.InflightBatches() != 0 || c.Completed() != 5 {
		t.Errorf("Buffered=%d InflightBatches=%d Completed=%d", c.Buffered(), c.InflightBatches(), c.Completed())
	}
	want := append(append([]mcast.MsgID{}, first...), second...)
	if !reflect.DeepEqual(completed, want) {
		t.Errorf("completions = %v, want %v", completed, want)
	}
}

func TestOversizedPayloadShipsAlone(t *testing.T) {
	var fx node.Effects
	c := testClient(batch.Options{MaxMsgs: 10, MaxBytes: 4, MaxDelay: time.Hour}, nil)
	submit(t, c, &fx, 1, "way-past-the-bytes-bound", 0)
	env := envelopes(t, &fx)
	if len(env) != 1 {
		t.Fatalf("oversized payload flushed %d envelopes, want singleton batch", len(env))
	}
	entries, _ := batch.DecodePayload(env[0].Payload)
	if len(entries) != 1 {
		t.Errorf("entries = %d, want 1", len(entries))
	}
}

func TestExpandInto(t *testing.T) {
	entries := []msgs.BatchEntry{
		{ID: mcast.MakeMsgID(9, 1), Payload: []byte("x")},
		{ID: mcast.MakeMsgID(9, 2), Payload: []byte("y")},
	}
	dest := mcast.NewGroupSet(0, 2)
	gts := mcast.Timestamp{Time: 7, Group: 2}
	env := mcast.Delivery{
		Msg: mcast.AppMsg{ID: batch.MakeBatchID(9, 1), Dest: dest, Payload: batch.EncodePayload(entries)},
		GTS: gts,
	}
	var fx node.Effects
	batch.ExpandInto(&fx, env)
	if len(fx.Deliveries) != 2 {
		t.Fatalf("expanded into %d deliveries, want 2", len(fx.Deliveries))
	}
	for i, d := range fx.Deliveries {
		if d.Msg.ID != entries[i].ID || string(d.Msg.Payload) != string(entries[i].Payload) {
			t.Errorf("delivery %d = %v", i, d.Msg)
		}
		if d.GTS != gts || d.Sub != i {
			t.Errorf("delivery %d stamped (%v,%d), want (%v,%d)", i, d.GTS, d.Sub, gts, i)
		}
		if !d.Msg.Dest.Equal(dest) {
			t.Errorf("delivery %d dest = %v", i, d.Msg.Dest)
		}
	}
	// Non-batch deliveries pass through untouched.
	plain := mcast.Delivery{Msg: mcast.AppMsg{ID: mcast.MakeMsgID(9, 3), Payload: []byte("p")}, GTS: gts}
	var fx2 node.Effects
	batch.ExpandInto(&fx2, plain)
	if len(fx2.Deliveries) != 1 || !reflect.DeepEqual(fx2.Deliveries[0], plain) {
		t.Errorf("plain delivery mangled: %v", fx2.Deliveries)
	}
}

// Package sim is a deterministic discrete-event network simulator for the
// protocol nodes of this repository.
//
// The simulator models the system of paper §II: processes connected by
// reliable FIFO channels, with per-message network delays chosen by a
// pluggable Latency function (at most δ after GST). Virtual time is a
// time.Duration; local steps are instantaneous. Determinism (a seeded RNG
// and a stable event order) makes every test reproducible, and exact latency
// control lets tests assert the paper's latency theorems in units of δ and
// replay the adversarial schedule of Fig. 2.
//
// Fault injection goes beyond the paper's model: crash-stop process
// failures (Crash) and pre-GST message-delay inflation (Latency functions)
// as in §II, plus the hooks the chaos harness (internal/faults) builds on —
// crash-recovery restarts (Restart), per-transmission drop/duplicate/
// delay/reorder verdicts (Config.Filter), per-process timer skew
// (Config.TimerScale) and virtual-time control callbacks (ControlAt).
// Without a Filter, channels never drop or reorder messages.
//
// # Layering
//
// sim is one of the three runtimes driving node.Handler (with
// internal/live and internal/tcpnet). internal/faults plugs into its
// Filter/TimerScale/ControlAt hooks for chaos runs; internal/harness
// wires simulator, protocols and checkers into ready-made clusters; the
// public Simulated transport wraps it for API users.
package sim

package sim

import (
	"math/rand"
	"testing"
	"time"

	"wbcast/internal/mcast"
	"wbcast/internal/msgs"
	"wbcast/internal/node"
)

// echoNode replies to every Heartbeat with a HeartbeatAck and records
// received messages with their arrival times.
type echoNode struct {
	pid      mcast.ProcessID
	received []msgs.Kind
	froms    []mcast.ProcessID
	at       []time.Duration
	sim      *Sim
	started  bool
}

func (e *echoNode) ID() mcast.ProcessID { return e.pid }
func (e *echoNode) Handle(in node.Input, fx *node.Effects) {
	switch in := in.(type) {
	case node.Start:
		e.started = true
	case node.Recv:
		e.received = append(e.received, in.Msg.Kind())
		e.froms = append(e.froms, in.From)
		if e.sim != nil {
			e.at = append(e.at, e.sim.Now())
		}
		if hb, ok := in.Msg.(msgs.Heartbeat); ok {
			fx.Send(in.From, msgs.HeartbeatAck{Group: hb.Group, Bal: hb.Bal})
		}
	}
}

func TestStartDeliveredFirst(t *testing.T) {
	s := New(Config{Latency: Uniform(time.Millisecond)})
	n := &echoNode{pid: 1}
	s.Add(n)
	s.Run(time.Second)
	if !n.started {
		t.Fatal("Start input not delivered")
	}
}

func TestMessageExchangeAndLatency(t *testing.T) {
	const d = 10 * time.Millisecond
	s := New(Config{Latency: Uniform(d)})
	a := &echoNode{pid: 1}
	b := &echoNode{pid: 2}
	a.sim, b.sim = s, s
	s.Add(a)
	s.Add(b)
	// Pretend node 1 sent a heartbeat: inject its arrival at node 2 at t=0.
	// Node 2 replies; the ack takes exactly δ back to node 1.
	s.Inject(0, 2, node.Recv{From: 1, Msg: msgs.Heartbeat{Group: 0, Bal: mcast.Ballot{N: 1, Proc: 1}}})
	s.Run(time.Second)
	if len(b.received) != 1 || b.received[0] != msgs.KindHeartbeat {
		t.Fatalf("node 2 received %v", b.received)
	}
	if len(a.received) != 1 || a.received[0] != msgs.KindHeartbeatAck {
		t.Fatalf("node 1 received %v", a.received)
	}
	if a.at[0] != d {
		t.Errorf("ack arrived at %v, want %v", a.at[0], d)
	}
	if got := s.MessageCount(msgs.KindHeartbeatAck); got != 1 {
		t.Errorf("ack count = %d", got)
	}
	if s.TotalSent() != 1 {
		t.Errorf("TotalSent = %d, want 1", s.TotalSent())
	}
}

// senderNode sends two messages back-to-back when started.
type senderNode struct {
	pid  mcast.ProcessID
	to   mcast.ProcessID
	msgs []msgs.Message
}

func (s *senderNode) ID() mcast.ProcessID { return s.pid }
func (s *senderNode) Handle(in node.Input, fx *node.Effects) {
	if _, ok := in.(node.Start); ok {
		for _, m := range s.msgs {
			fx.Send(s.to, m)
		}
	}
}

func TestFIFOPreservedUnderShrinkingLatency(t *testing.T) {
	// The first message takes 10ms, the second 1ms: FIFO requires the second
	// to still arrive after the first.
	n := 0
	lat := func(_, _ mcast.ProcessID, _ msgs.Message, _ time.Duration, _ *rand.Rand) time.Duration {
		n++
		if n == 1 {
			return 10 * time.Millisecond
		}
		return time.Millisecond
	}
	s := New(Config{Latency: lat})
	recv := &echoNode{pid: 2, sim: s}
	s.Add(&senderNode{pid: 1, to: 2, msgs: []msgs.Message{
		msgs.Heartbeat{Group: 0, Bal: mcast.Ballot{N: 1}},
		msgs.Heartbeat{Group: 0, Bal: mcast.Ballot{N: 2}},
	}})
	s.Add(recv)
	s.Run(time.Second)
	if len(recv.received) != 2 {
		t.Fatalf("received %d messages", len(recv.received))
	}
	if recv.at[0] > recv.at[1] {
		t.Fatalf("FIFO violated: first at %v, second at %v", recv.at[0], recv.at[1])
	}
	if recv.at[1] != 10*time.Millisecond {
		t.Errorf("second message should be held to %v, got %v", 10*time.Millisecond, recv.at[1])
	}
}

func TestSelfSendZeroLatency(t *testing.T) {
	s := New(Config{Latency: Uniform(time.Hour)})
	n := &echoNode{pid: 1, sim: s}
	s.Add(n)
	s.Inject(0, 1, node.Recv{From: 1, Msg: msgs.Heartbeat{Group: 0}})
	s.Run(time.Minute)
	// echoNode replies to itself; the self-ack must arrive with zero latency.
	if len(n.received) != 2 {
		t.Fatalf("received %v", n.received)
	}
	if n.at[1] != 0 {
		t.Errorf("self-send latency = %v, want 0", n.at[1])
	}
}

func TestCrashStopsProcessing(t *testing.T) {
	s := New(Config{Latency: Uniform(time.Millisecond)})
	n := &echoNode{pid: 1, sim: s}
	s.Add(n)
	s.Inject(time.Millisecond, 1, node.Recv{From: 2, Msg: msgs.Heartbeat{}})
	s.Crash(1)
	s.Run(time.Second)
	if len(n.received) != 0 {
		t.Fatalf("crashed process handled %v", n.received)
	}
	if !s.Crashed(1) {
		t.Error("Crashed(1) = false")
	}
}

func TestTimers(t *testing.T) {
	var fired []time.Duration
	s := New(Config{})
	h := node.Func{PID: 1, F: func(in node.Input, fx *node.Effects) {
		switch in := in.(type) {
		case node.Start:
			fx.SetTimer(5*time.Millisecond, node.TimerRetry, 42)
		case node.Timer:
			if in.Kind == node.TimerRetry && in.Data == 42 {
				fired = append(fired, s.Now())
			}
		}
	}}
	s.Add(h)
	s.Run(time.Second)
	if len(fired) != 1 || fired[0] != 5*time.Millisecond {
		t.Fatalf("timer fired at %v", fired)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := New(Config{Latency: UniformJitter(time.Millisecond, 4*time.Millisecond), Seed: 99})
		a := &echoNode{pid: 1, sim: s}
		b := &echoNode{pid: 2, sim: s}
		s.Add(a)
		s.Add(b)
		for i := 0; i < 20; i++ {
			s.Inject(time.Duration(i)*time.Millisecond, 2, node.Recv{From: 1, Msg: msgs.Heartbeat{}})
		}
		s.Run(time.Second)
		return append(append([]time.Duration{}, a.at...), b.at...)
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("different event counts: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestGenuinenessAuditFlagsOutsider(t *testing.T) {
	top := mcast.UniformTopology(3, 1) // 3 singleton groups: procs 0,1,2
	s := New(Config{Latency: Uniform(time.Millisecond)})
	m := mcast.AppMsg{ID: mcast.MakeMsgID(100, 1), Dest: mcast.NewGroupSet(0)}
	// Client 100 multicasts to group 0 but the handler leaks the message to
	// process 2 (group 2), violating genuineness.
	client := node.Func{PID: 100, F: func(in node.Input, fx *node.Effects) {
		if sub, ok := in.(node.Submit); ok {
			fx.Send(0, msgs.Multicast{M: sub.Msg})
			fx.Send(2, msgs.Multicast{M: sub.Msg}) // leak
		}
	}}
	sink := func(pid mcast.ProcessID) node.Handler {
		return node.Func{PID: pid, F: func(node.Input, *node.Effects) {}}
	}
	s.Add(client)
	s.Add(sink(0))
	s.Add(sink(2))
	s.SubmitAt(0, 100, m)
	s.Run(time.Second)
	errs := s.AuditGenuineness(top)
	if len(errs) != 1 {
		t.Fatalf("audit errors = %v, want exactly 1", errs)
	}
}

func TestFirstDeliveryAndSubmitTime(t *testing.T) {
	top := mcast.UniformTopology(1, 3)
	s := New(Config{Latency: Uniform(time.Millisecond)})
	m := mcast.AppMsg{ID: mcast.MakeMsgID(100, 1), Dest: mcast.NewGroupSet(0)}
	deliverer := node.Func{PID: 0, F: func(in node.Input, fx *node.Effects) {
		if _, ok := in.(node.Submit); ok {
			fx.Deliver(mcast.Delivery{Msg: m, GTS: mcast.Timestamp{Time: 1}})
		}
	}}
	s.Add(deliverer)
	s.SubmitAt(3*time.Millisecond, 0, m)
	s.Run(time.Second)
	at, ok := s.FirstDelivery(top, m.ID, 0)
	if !ok || at != 3*time.Millisecond {
		t.Fatalf("FirstDelivery = %v,%v", at, ok)
	}
	st, ok := s.SubmitTime(m.ID)
	if !ok || st != 3*time.Millisecond {
		t.Fatalf("SubmitTime = %v,%v", st, ok)
	}
	if _, ok := s.FirstDelivery(top, mcast.MakeMsgID(1, 99), 0); ok {
		t.Error("FirstDelivery for unknown message should be false")
	}
	if got := s.DeliveriesAt(0); len(got) != 1 {
		t.Errorf("DeliveriesAt(0) = %v", got)
	}
}

package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"wbcast/internal/mcast"
	"wbcast/internal/msgs"
	"wbcast/internal/node"
	"wbcast/internal/wal"
)

// Latency decides the network delay of one message. It may consult mutable
// test state (the simulator is single-threaded) and the seeded RNG for
// reproducible jitter. Self-sends bypass it and take zero time.
type Latency func(from, to mcast.ProcessID, m msgs.Message, now time.Duration, rng *rand.Rand) time.Duration

// Uniform returns a Latency with constant delay d on every link.
func Uniform(d time.Duration) Latency {
	return func(_, _ mcast.ProcessID, _ msgs.Message, _ time.Duration, _ *rand.Rand) time.Duration {
		return d
	}
}

// UniformJitter returns a Latency uniformly distributed in [d, d+jitter).
func UniformJitter(d, jitter time.Duration) Latency {
	return func(_, _ mcast.ProcessID, _ msgs.Message, _ time.Duration, rng *rand.Rand) time.Duration {
		if jitter <= 0 {
			return d
		}
		return d + time.Duration(rng.Int63n(int64(jitter)))
	}
}

// Verdict is a Filter's decision about one message transmission on one
// link. The zero value transmits the message normally.
type Verdict struct {
	// Drop loses the transmission entirely (the protocols' retry machinery
	// is responsible for recovering).
	Drop bool
	// Duplicates schedules this many extra copies of the message, each with
	// an independently sampled link latency.
	Duplicates int
	// Delay adds to the sampled link latency of every copy.
	Delay time.Duration
	// Reorder exempts this transmission from the per-link FIFO floor, so it
	// may arrive before messages sent earlier on the same link.
	Reorder bool
}

// Filter decides the fate of one message transmission (one recipient of one
// Send). Self-sends bypass it — a process can always reach itself. It may
// consult the seeded RNG for reproducible randomness and mutable fault
// state (the simulator is single-threaded).
type Filter func(from, to mcast.ProcessID, m msgs.Message, now time.Duration, rng *rand.Rand) Verdict

// Config parametrises a simulation.
type Config struct {
	// Latency decides per-message delays; nil defaults to Uniform(10ms).
	Latency Latency
	// Seed initialises the simulator's RNG.
	Seed int64
	// Filter, if non-nil, is consulted once per transmission and may drop,
	// duplicate, delay or reorder it (fault injection; see internal/faults).
	Filter Filter
	// TimerScale, if non-nil, rescales every timer duration armed by
	// process p — a clock-skewed process sees its timeouts stretched or
	// compressed relative to the network.
	TimerScale func(p mcast.ProcessID, after time.Duration) time.Duration
	// Trace, if non-nil, receives every event as it is processed.
	Trace func(TraceEvent)
	// OnDeliver, if non-nil, receives every application delivery as it is
	// recorded, from inside the dispatch of the delivering event. Runtimes
	// built on the simulator (the public Simulated transport) use it to
	// stream deliveries out without polling Deliveries().
	OnDeliver func(p mcast.ProcessID, d mcast.Delivery)
	// Rebuild, if non-nil, constructs a fresh handler for a restarting
	// process (Restart): a disk-backed deployment builds it by loading the
	// process's Storage, so simulated restarts exercise the real recovery
	// path instead of reusing the live in-memory handler. Returning a nil
	// handler (and nil error) keeps the existing in-memory handler — the
	// escape hatch for processes without a configured store.
	Rebuild func(p mcast.ProcessID) (node.Handler, error)
	// OnStorageCrash, if non-nil, observes a process crash-stopping on a
	// storage failure (Append or Sync error on its configured Storage).
	OnStorageCrash func(p mcast.ProcessID, err error)
}

// TraceEvent describes one processed input for debugging and audits.
type TraceEvent struct {
	At   time.Duration
	Proc mcast.ProcessID
	In   node.Input
}

// DeliveryRecord is an application-message delivery observed at a process.
type DeliveryRecord struct {
	Proc mcast.ProcessID
	At   time.Duration
	D    mcast.Delivery
}

// Sim is the simulator. Not safe for concurrent use.
type Sim struct {
	cfg     Config
	rng     *rand.Rand
	now     time.Duration
	seq     uint64
	pq      eventHeap
	nodes   map[mcast.ProcessID]node.Handler
	stores  map[mcast.ProcessID]wal.Storage
	crashed map[mcast.ProcessID]bool
	// lastArrival enforces FIFO per ordered process pair: arrival times on a
	// link never decrease, and equal-time events are dispatched in schedule
	// (seq) order.
	lastArrival map[linkKey]time.Duration

	deliveries []DeliveryRecord
	msgCounts  map[msgs.Kind]int
	sent       int
	dropped    int

	// Genuineness audit (paper §II): for every application message, the set
	// of processes that received a protocol message concerning it.
	touched map[mcast.MsgID]map[mcast.ProcessID]bool
	// submitted records dest(m) and the sender for every Submit.
	submitted map[mcast.MsgID]submitRecord
}

type submitRecord struct {
	sender mcast.ProcessID
	dest   mcast.GroupSet
	at     time.Duration
}

type linkKey struct{ from, to mcast.ProcessID }

// New creates a simulator.
func New(cfg Config) *Sim {
	if cfg.Latency == nil {
		cfg.Latency = Uniform(10 * time.Millisecond)
	}
	return &Sim{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		nodes:       make(map[mcast.ProcessID]node.Handler),
		stores:      make(map[mcast.ProcessID]wal.Storage),
		crashed:     make(map[mcast.ProcessID]bool),
		lastArrival: make(map[linkKey]time.Duration),
		msgCounts:   make(map[msgs.Kind]int),
		touched:     make(map[mcast.MsgID]map[mcast.ProcessID]bool),
		submitted:   make(map[mcast.MsgID]submitRecord),
	}
}

// Add registers a handler and schedules its Start input at the current time.
func (s *Sim) Add(h node.Handler) {
	pid := h.ID()
	if _, dup := s.nodes[pid]; dup {
		panic(fmt.Sprintf("sim: duplicate handler for process %d", pid))
	}
	s.nodes[pid] = h
	s.schedule(s.now, pid, node.Start{})
}

// SetStorage attaches a durable store to process pid: its persist effects
// are appended and synced before any send or delivery of the same Handle
// call, and a storage error crash-stops it.
func (s *Sim) SetStorage(pid mcast.ProcessID, st wal.Storage) {
	s.stores[pid] = st
}

// Crash marks a process as crashed: it processes no further events —
// inputs that arrive (or timers that fire) while it is down are lost.
// Crashes are permanent (crash-stop model, paper §II) unless undone by
// Restart.
func (s *Sim) Crash(pid mcast.ProcessID) { s.crashed[pid] = true }

// Crashed reports whether pid has crashed.
func (s *Sim) Crashed(pid mcast.ProcessID) bool { return s.crashed[pid] }

// Restart brings a crashed process back at the current virtual time and
// re-delivers Start so it re-arms its background timers. It is a no-op if
// pid is not crashed.
//
// Without Config.Rebuild, the process returns with its in-memory handler
// state INTACT — an optimistic model equivalent to a long pause, not real
// crash-recovery: nothing was persisted, the state simply never left RAM.
// With Config.Rebuild (set when a Storage is configured), the old handler
// is discarded and a fresh one is constructed by replaying the process's
// durable store, which is the real recovery path: state transitions that
// were never synced are lost, exactly as on disk. Either way, everything
// sent to the process while it was down is gone, which is what exercises
// the protocols' catch-up machinery.
//
// Timers the process armed before crashing are purged: they are
// process-local state a real crash loses, and leaving them queued would
// run the pre-crash timer chains concurrently with the ones the fresh
// Start arms (e.g. two interleaved suspicion chains, each consuming the
// other's heartbeat evidence). In-flight messages are NOT purged — a
// message already in the network legitimately arrives after the restart.
func (s *Sim) Restart(pid mcast.ProcessID) {
	if !s.crashed[pid] {
		return
	}
	delete(s.crashed, pid)
	kept := s.pq[:0]
	for _, ev := range s.pq {
		if ev.proc == pid {
			if _, isTimer := ev.in.(node.Timer); isTimer {
				continue
			}
		}
		kept = append(kept, ev)
	}
	s.pq = kept
	heap.Init(&s.pq)
	if _, ok := s.nodes[pid]; !ok {
		return
	}
	if s.cfg.Rebuild != nil {
		h, err := s.cfg.Rebuild(pid)
		if err != nil {
			// A process whose store cannot be replayed stays down (its peers
			// carry on; a later Restart retries).
			s.crashed[pid] = true
			if s.cfg.OnStorageCrash != nil {
				s.cfg.OnStorageCrash(pid, err)
			}
			return
		}
		if h != nil {
			s.nodes[pid] = h
		}
	}
	s.schedule(s.now, pid, node.Start{})
}

// ControlAt schedules fn to run at virtual time at, between handler events.
// The fault engine uses it to fire time-triggered fault actions at exact
// virtual instants, keeping them inside the deterministic event order.
func (s *Sim) ControlAt(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.pq, event{at: at, seq: s.seq, proc: mcast.NoProcess, ctl: fn})
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Pending returns the number of events still queued. A driver that pumps
// the simulator to quiescence loops until Pending reaches zero; protocols
// with periodic timers (heartbeats, GC) never quiesce.
func (s *Sim) Pending() int { return s.pq.Len() }

// SubmitAt schedules a Submit input for the client handler at time at,
// recording the message for the latency and genuineness audits.
func (s *Sim) SubmitAt(at time.Duration, client mcast.ProcessID, m mcast.AppMsg) {
	if at < s.now {
		panic("sim: SubmitAt in the past")
	}
	s.NoteSubmit(at, client, m)
	s.schedule(at, client, node.Submit{Msg: m})
}

// NoteSubmit records a submission for the latency and genuineness audits
// without scheduling any event. Tests that inject MULTICAST traffic directly
// (bypassing a client handler) use it to keep the audits accurate.
func (s *Sim) NoteSubmit(at time.Duration, client mcast.ProcessID, m mcast.AppMsg) {
	s.submitted[m.ID] = submitRecord{sender: client, dest: m.Dest.Clone(), at: at}
}

// Inject schedules an arbitrary input at time at (tests of single handlers).
func (s *Sim) Inject(at time.Duration, pid mcast.ProcessID, in node.Input) {
	if at < s.now {
		panic("sim: Inject in the past")
	}
	s.schedule(at, pid, in)
}

// Run processes events until the queue is exhausted or virtual time would
// exceed until. Returns the number of events processed.
func (s *Sim) Run(until time.Duration) int {
	n := 0
	for s.pq.Len() > 0 {
		ev := s.pq[0]
		if ev.at > until {
			break
		}
		heap.Pop(&s.pq)
		s.now = ev.at
		n++
		s.dispatch(ev)
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// RunQuiescent processes events until none remain or maxTime is reached.
// Protocols with periodic timers (heartbeats) never quiesce; use Run.
func (s *Sim) RunQuiescent(maxTime time.Duration) int {
	return s.Run(maxTime)
}

func (s *Sim) dispatch(ev event) {
	if ev.ctl != nil {
		ev.ctl()
		return
	}
	if s.crashed[ev.proc] {
		return
	}
	h, ok := s.nodes[ev.proc]
	if !ok {
		return
	}
	if rcv, ok := ev.in.(node.Recv); ok {
		s.msgCounts[rcv.Msg.Kind()]++
		if c, ok := rcv.Msg.(msgs.Concerner); ok {
			if id, ok := c.Concerns(); ok {
				set := s.touched[id]
				if set == nil {
					set = make(map[mcast.ProcessID]bool)
					s.touched[id] = set
				}
				set[ev.proc] = true
			}
		}
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace(TraceEvent{At: s.now, Proc: ev.proc, In: ev.in})
	}
	var fx node.Effects
	h.Handle(ev.in, &fx)
	s.apply(ev.proc, &fx)
}

func (s *Sim) apply(from mcast.ProcessID, fx *node.Effects) {
	// Durability first: persist entries are appended and synced before any
	// send or delivery of this Handle call is released, and a storage
	// failure crash-stops the process — none of its remaining effects
	// apply, exactly as if it had crashed inside the Handle call.
	if len(fx.Persists) > 0 {
		if st, ok := s.stores[from]; ok {
			err := st.Append(fx.Persists...)
			if err == nil {
				err = st.Sync()
			}
			if err != nil {
				s.crashed[from] = true
				if s.cfg.OnStorageCrash != nil {
					s.cfg.OnStorageCrash(from, err)
				}
				return
			}
		}
	}
	for _, d := range fx.Deliveries {
		s.deliveries = append(s.deliveries, DeliveryRecord{Proc: from, At: s.now, D: d})
		if s.cfg.OnDeliver != nil {
			s.cfg.OnDeliver(from, d)
		}
	}
	for _, tm := range fx.Timers {
		after := tm.After
		if s.cfg.TimerScale != nil {
			after = s.cfg.TimerScale(from, after)
			if after < 0 {
				after = 0
			}
		}
		s.schedule(s.now+after, from, node.Timer{Kind: tm.Kind, Data: tm.Data})
	}
	for _, snd := range fx.Sends {
		// A MULTICAST for an ID the audits have never seen originates here:
		// the sender synthesised the message itself (e.g. a batching client
		// flushing an envelope, internal/batch). Record it so genuineness
		// accounting covers protocol-level messages the test harness did not
		// submit explicitly.
		if mc, ok := snd.Msg.(msgs.Multicast); ok {
			if _, known := s.submitted[mc.M.ID]; !known {
				s.NoteSubmit(s.now, from, mc.M)
			}
		}
		for i := 0; i < snd.NumRecipients(); i++ {
			to := snd.Recipient(i)
			s.sent++
			var v Verdict
			if to != from && s.cfg.Filter != nil {
				v = s.cfg.Filter(from, to, snd.Msg, s.now, s.rng)
			}
			if v.Drop {
				s.dropped++
				continue
			}
			for copies := 1 + v.Duplicates; copies > 0; copies-- {
				var lat time.Duration
				if to != from {
					lat = s.cfg.Latency(from, to, snd.Msg, s.now, s.rng)
					if lat < 0 {
						lat = 0
					}
					lat += v.Delay
				}
				at := s.now + lat
				if !v.Reorder {
					// FIFO: never deliver before an earlier message on the
					// same link. Reordered transmissions skip the floor (and
					// do not raise it for later messages).
					lk := linkKey{from, to}
					if prev, ok := s.lastArrival[lk]; ok && at < prev {
						at = prev
					}
					s.lastArrival[lk] = at
				}
				s.schedule(at, to, node.Recv{From: from, Msg: snd.Msg})
			}
		}
	}
}

func (s *Sim) schedule(at time.Duration, pid mcast.ProcessID, in node.Input) {
	s.seq++
	heap.Push(&s.pq, event{at: at, seq: s.seq, proc: pid, in: in})
}

// Deliveries returns all recorded deliveries in processing order.
func (s *Sim) Deliveries() []DeliveryRecord { return s.deliveries }

// DeliveriesAt returns the deliveries observed at one process, in order.
func (s *Sim) DeliveriesAt(pid mcast.ProcessID) []DeliveryRecord {
	var out []DeliveryRecord
	for _, d := range s.deliveries {
		if d.Proc == pid {
			out = append(out, d)
		}
	}
	return out
}

// FirstDelivery returns the earliest delivery time of message id at any
// member of group g, and false if it was never delivered there. This is the
// paper's per-group delivery latency reference point (§II).
func (s *Sim) FirstDelivery(top *mcast.Topology, id mcast.MsgID, g mcast.GroupID) (time.Duration, bool) {
	best := time.Duration(-1)
	for _, d := range s.deliveries {
		if d.D.Msg.ID != id || top.GroupOf(d.Proc) != g {
			continue
		}
		if best < 0 || d.At < best {
			best = d.At
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// SubmitTime returns when message id was submitted.
func (s *Sim) SubmitTime(id mcast.MsgID) (time.Duration, bool) {
	r, ok := s.submitted[id]
	return r.at, ok
}

// MessageCount returns how many messages of kind k were received in total.
func (s *Sim) MessageCount(k msgs.Kind) int { return s.msgCounts[k] }

// TotalSent returns the total number of protocol messages sent.
func (s *Sim) TotalSent() int { return s.sent }

// TotalDropped returns the number of transmissions dropped by the Filter.
func (s *Sim) TotalDropped() int { return s.dropped }

// AuditGenuineness verifies the minimality property of paper §II: every
// process that received a message concerning application message m is either
// m's sender or a member of a destination group of m. It returns one error
// per violation.
func (s *Sim) AuditGenuineness(top *mcast.Topology) []error {
	var errs []error
	for id, procs := range s.touched {
		rec, ok := s.submitted[id]
		if !ok {
			errs = append(errs, fmt.Errorf("sim: message %v was never submitted but was ordered", id))
			continue
		}
		for p := range procs {
			if p == rec.sender {
				continue
			}
			if g := top.GroupOf(p); g != mcast.NoGroup && rec.dest.Contains(g) {
				continue
			}
			errs = append(errs, fmt.Errorf("sim: process %d participated in ordering %v with dest %v (genuineness violation)", p, id, rec.dest))
		}
	}
	return errs
}

type event struct {
	at   time.Duration
	seq  uint64
	proc mcast.ProcessID
	in   node.Input
	// ctl, when non-nil, makes this a control event (ControlAt): dispatch
	// runs the callback instead of routing an input to a handler.
	ctl func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Package mcast defines the core vocabulary shared by every protocol in this
// repository: process and group identifiers, Lamport-style multicast
// timestamps, Paxos-style ballots, application messages and deliveries.
//
// The types follow §II–§III of Gotsman, Lefort, Chockler, "White-box Atomic
// Multicast" (DSN 2019): timestamps are pairs (t, g) of a non-negative
// integer and a group identifier, ordered lexicographically with ⊥ (the zero
// value) as the minimum; ballots are pairs (n, p) of an integer and a
// process identifier, ordered the same way.
//
// # Layering
//
// mcast is the bottom of the stack: it depends on nothing in this module
// and everything else — messages, protocols, runtimes, checkers and the
// public wbcast package — builds on its vocabulary.
package mcast

package mcast

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMsgIDPacking(t *testing.T) {
	cases := []struct {
		sender ProcessID
		seq    uint32
	}{
		{0, 0}, {1, 1}, {42, 7}, {1 << 20, 1 << 30}, {2147483647, 4294967295},
	}
	for _, c := range cases {
		id := MakeMsgID(c.sender, c.seq)
		if id.Sender() != c.sender {
			t.Errorf("MakeMsgID(%d,%d).Sender() = %d", c.sender, c.seq, id.Sender())
		}
		if id.Seq() != c.seq {
			t.Errorf("MakeMsgID(%d,%d).Seq() = %d", c.sender, c.seq, id.Seq())
		}
	}
}

func TestMsgIDUniqueness(t *testing.T) {
	seen := map[MsgID]bool{}
	for s := ProcessID(0); s < 10; s++ {
		for q := uint32(0); q < 100; q++ {
			id := MakeMsgID(s, q)
			if seen[id] {
				t.Fatalf("duplicate MsgID for sender=%d seq=%d", s, q)
			}
			seen[id] = true
		}
	}
}

func TestTimestampOrder(t *testing.T) {
	ts := []Timestamp{
		{}, {Time: 1, Group: 0}, {Time: 1, Group: 1}, {Time: 2, Group: 0}, {Time: 2, Group: 5},
	}
	for i := range ts {
		for j := range ts {
			wantLess := i < j
			if got := ts[i].Less(ts[j]); got != wantLess {
				t.Errorf("%v.Less(%v) = %v, want %v", ts[i], ts[j], got, wantLess)
			}
		}
	}
	if !ZeroTS.IsZero() {
		t.Error("ZeroTS.IsZero() = false")
	}
	if ZeroTS.String() != "⊥" {
		t.Errorf("ZeroTS.String() = %q", ZeroTS.String())
	}
}

// Property: Less is a strict total order (irreflexive, asymmetric,
// transitive, total) on timestamps.
func TestTimestampTotalOrderProperty(t *testing.T) {
	f := func(a, b, c Timestamp) bool {
		// Irreflexive.
		if a.Less(a) {
			return false
		}
		// Total: exactly one of <, =, > holds.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a == b {
			n++
		}
		if n != 1 {
			return false
		}
		// Transitive.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		// Compare consistent with Less.
		if (a.Compare(b) == -1) != a.Less(b) || (a.Compare(b) == 0) != (a == b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxTimestamp returns an upper bound that is one of its inputs.
func TestMaxTimestampProperty(t *testing.T) {
	f := func(tss []Timestamp) bool {
		m := MaxTimestamp(tss...)
		if len(tss) == 0 {
			return m.IsZero()
		}
		found := m.IsZero() // ⊥ is a valid result only if it is an input or all inputs are ⊥.
		for _, ts := range tss {
			if m.Less(ts) {
				return false
			}
			if ts == m {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBallotOrder(t *testing.T) {
	bs := []Ballot{
		{}, {N: 1, Proc: 0}, {N: 1, Proc: 3}, {N: 2, Proc: 1},
	}
	for i := range bs {
		for j := range bs {
			wantLess := i < j
			if got := bs[i].Less(bs[j]); got != wantLess {
				t.Errorf("%v.Less(%v) = %v, want %v", bs[i], bs[j], got, wantLess)
			}
			if got := bs[i].LessEq(bs[j]); got != (i <= j) {
				t.Errorf("%v.LessEq(%v) = %v, want %v", bs[i], bs[j], got, i <= j)
			}
		}
	}
	if (Ballot{N: 7, Proc: 3}).Leader() != 3 {
		t.Error("Leader() should return Proc")
	}
}

func TestGroupSetNormalisation(t *testing.T) {
	gs := NewGroupSet(3, 1, 3, 0, 1)
	want := GroupSet{0, 1, 3}
	if !gs.Equal(want) {
		t.Fatalf("NewGroupSet = %v, want %v", gs, want)
	}
	for _, g := range want {
		if !gs.Contains(g) {
			t.Errorf("Contains(%d) = false", g)
		}
	}
	if gs.Contains(2) || gs.Contains(4) {
		t.Error("Contains reported absent group")
	}
}

func TestGroupSetIntersects(t *testing.T) {
	cases := []struct {
		a, b GroupSet
		want bool
	}{
		{NewGroupSet(0, 1), NewGroupSet(1, 2), true},
		{NewGroupSet(0, 1), NewGroupSet(2, 3), false},
		{NewGroupSet(), NewGroupSet(0), false},
		{NewGroupSet(5), NewGroupSet(5), true},
		{NewGroupSet(0, 2, 4), NewGroupSet(1, 3, 5), false},
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("intersects not symmetric for %v, %v", c.a, c.b)
		}
	}
}

// Property: Intersects agrees with a brute-force membership check.
func TestGroupSetIntersectsProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		ga := make([]GroupID, len(a))
		for i, x := range a {
			ga[i] = GroupID(x % 16)
		}
		gb := make([]GroupID, len(b))
		for i, x := range b {
			gb[i] = GroupID(x % 16)
		}
		sa, sb := NewGroupSet(ga...), NewGroupSet(gb...)
		brute := false
		for _, x := range sa {
			for _, y := range sb {
				if x == y {
					brute = true
				}
			}
		}
		return sa.Intersects(sb) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppMsgClone(t *testing.T) {
	m := AppMsg{ID: MakeMsgID(9, 1), Dest: NewGroupSet(0, 1), Payload: []byte("hello")}
	c := m.Clone()
	c.Payload[0] = 'X'
	c.Dest[0] = 7
	if m.Payload[0] != 'h' || m.Dest[0] != 0 {
		t.Error("Clone shares memory with original")
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology([][]ProcessID{{}}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewTopology([][]ProcessID{{0, 1}}); err == nil {
		t.Error("even group accepted")
	}
	if _, err := NewTopology([][]ProcessID{{0, 1, 2}, {2, 3, 4}}); err == nil {
		t.Error("overlapping groups accepted")
	}
	if _, err := NewTopology([][]ProcessID{{0, 1, 2}, {3, 4, 5}}); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestUniformTopology(t *testing.T) {
	top := UniformTopology(3, 5)
	if top.NumGroups() != 3 || top.NumReplicas() != 15 {
		t.Fatalf("got %d groups, %d replicas", top.NumGroups(), top.NumReplicas())
	}
	if top.QuorumSize(0) != 3 {
		t.Errorf("QuorumSize = %d, want 3", top.QuorumSize(0))
	}
	for g := GroupID(0); g < 3; g++ {
		for i, p := range top.Members(g) {
			if top.GroupOf(p) != g {
				t.Errorf("GroupOf(%d) = %d, want %d", p, top.GroupOf(p), g)
			}
			if top.Rank(p) != i {
				t.Errorf("Rank(%d) = %d, want %d", p, top.Rank(p), i)
			}
		}
	}
	if top.GroupOf(100) != NoGroup {
		t.Error("GroupOf(non-replica) should be NoGroup")
	}
	if top.IsReplica(100) {
		t.Error("IsReplica(non-replica) = true")
	}
	if top.Rank(100) != -1 {
		t.Error("Rank(non-replica) != -1")
	}
	if top.InitialLeader(1) != 5 {
		t.Errorf("InitialLeader(1) = %d, want 5", top.InitialLeader(1))
	}
	ib := top.InitialBallot(2)
	if ib.N != 1 || ib.Proc != 10 {
		t.Errorf("InitialBallot(2) = %v", ib)
	}
	ag := top.AllGroups()
	if !ag.Equal(NewGroupSet(0, 1, 2)) {
		t.Errorf("AllGroups = %v", ag)
	}
}

// Property: sorting by Less then checking adjacent pairs yields a sorted,
// stable sequence — Less must be usable as a sort predicate.
func TestTimestampSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		tss := make([]Timestamp, n)
		for i := range tss {
			tss[i] = Timestamp{Time: uint64(rng.Intn(20)), Group: GroupID(rng.Intn(5))}
		}
		sort.Slice(tss, func(i, j int) bool { return tss[i].Less(tss[j]) })
		for i := 1; i < len(tss); i++ {
			if tss[i].Less(tss[i-1]) {
				t.Fatalf("not sorted at %d: %v > %v", i, tss[i-1], tss[i])
			}
		}
	}
}

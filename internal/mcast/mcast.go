package mcast

import (
	"fmt"
	"sort"
	"strings"
)

// ProcessID identifies a process (replica or client) uniquely across the
// whole system. Replica IDs are assigned by Topology; client IDs must not
// collide with replica IDs.
type ProcessID int32

// NoProcess is the zero ProcessID minus one, used where "no process" must be
// distinguishable from process 0.
const NoProcess ProcessID = -1

// GroupID identifies a process group. Groups are disjoint sets of 2f+1
// replicas (paper §II).
type GroupID int32

// NoGroup marks the absence of a group.
const NoGroup GroupID = -1

// MsgID uniquely identifies an application message. It packs the sender's
// ProcessID and a per-sender sequence number, so IDs are unique as long as
// each sender allocates sequence numbers monotonically.
type MsgID uint64

// MakeMsgID packs a sender and a per-sender sequence number into a MsgID.
func MakeMsgID(sender ProcessID, seq uint32) MsgID {
	return MsgID(uint64(uint32(sender))<<32 | uint64(seq))
}

// Sender extracts the sending process encoded in the MsgID.
func (id MsgID) Sender() ProcessID { return ProcessID(int32(uint32(id >> 32))) }

// Seq extracts the per-sender sequence number encoded in the MsgID.
func (id MsgID) Seq() uint32 { return uint32(id) }

func (id MsgID) String() string {
	return fmt.Sprintf("m(%d.%d)", id.Sender(), id.Seq())
}

// Timestamp is a multicast timestamp (t, g): a logical clock value tagged
// with the group that issued it. Timestamps are ordered lexicographically,
// first by Time and then by Group. The zero value is ⊥, the minimal
// timestamp; protocols never issue ⊥ because clocks are incremented before
// use.
type Timestamp struct {
	Time  uint64
	Group GroupID
}

// ZeroTS is ⊥, the minimal timestamp.
var ZeroTS = Timestamp{}

// IsZero reports whether ts is ⊥.
func (ts Timestamp) IsZero() bool { return ts == Timestamp{} }

// Less reports whether ts orders strictly before other.
func (ts Timestamp) Less(other Timestamp) bool {
	if ts.Time != other.Time {
		return ts.Time < other.Time
	}
	return ts.Group < other.Group
}

// LessEq reports whether ts orders before or equal to other.
func (ts Timestamp) LessEq(other Timestamp) bool { return !other.Less(ts) }

// Compare returns -1, 0 or +1 as ts orders before, equal to or after other.
func (ts Timestamp) Compare(other Timestamp) int {
	switch {
	case ts.Less(other):
		return -1
	case other.Less(ts):
		return 1
	default:
		return 0
	}
}

// MaxTimestamp returns the maximum of the given timestamps, or ⊥ if none are
// given.
func MaxTimestamp(tss ...Timestamp) Timestamp {
	var max Timestamp
	for _, ts := range tss {
		if max.Less(ts) {
			max = ts
		}
	}
	return max
}

func (ts Timestamp) String() string {
	if ts.IsZero() {
		return "⊥"
	}
	return fmt.Sprintf("(%d,g%d)", ts.Time, ts.Group)
}

// Ballot identifies a leadership period (n, p): a round number tagged with
// the process acting as leader. Ballots are ordered lexicographically, first
// by N and then by Proc. The zero value is ⊥, the minimal ballot.
type Ballot struct {
	N    uint64
	Proc ProcessID
}

// ZeroBallot is ⊥, the minimal ballot.
var ZeroBallot = Ballot{}

// IsZero reports whether b is ⊥.
func (b Ballot) IsZero() bool { return b == Ballot{} }

// Less reports whether b orders strictly before other.
func (b Ballot) Less(other Ballot) bool {
	if b.N != other.N {
		return b.N < other.N
	}
	return b.Proc < other.Proc
}

// LessEq reports whether b orders before or equal to other.
func (b Ballot) LessEq(other Ballot) bool { return !other.Less(b) }

// Leader returns the process leading ballot b (leader(b) in the paper).
func (b Ballot) Leader() ProcessID { return b.Proc }

func (b Ballot) String() string {
	if b.IsZero() {
		return "⊥"
	}
	return fmt.Sprintf("b(%d,p%d)", b.N, b.Proc)
}

// GroupSet is a sorted, duplicate-free set of destination groups.
type GroupSet []GroupID

// NewGroupSet builds a normalised (sorted, deduplicated) GroupSet.
func NewGroupSet(groups ...GroupID) GroupSet {
	gs := make(GroupSet, 0, len(groups))
	gs = append(gs, groups...)
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	out := gs[:0]
	for i, g := range gs {
		if i == 0 || gs[i-1] != g {
			out = append(out, g)
		}
	}
	return out
}

// Contains reports whether g is in the set.
func (gs GroupSet) Contains(g GroupID) bool {
	i := sort.Search(len(gs), func(i int) bool { return gs[i] >= g })
	return i < len(gs) && gs[i] == g
}

// Intersects reports whether the two sets share any group, i.e. whether two
// messages with these destinations conflict (paper §II).
func (gs GroupSet) Intersects(other GroupSet) bool {
	i, j := 0, 0
	for i < len(gs) && j < len(other) {
		switch {
		case gs[i] < other[j]:
			i++
		case gs[i] > other[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Equal reports whether the two sets contain exactly the same groups.
func (gs GroupSet) Equal(other GroupSet) bool {
	if len(gs) != len(other) {
		return false
	}
	for i := range gs {
		if gs[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (gs GroupSet) Clone() GroupSet {
	if gs == nil {
		return nil
	}
	out := make(GroupSet, len(gs))
	copy(out, gs)
	return out
}

func (gs GroupSet) String() string {
	parts := make([]string, len(gs))
	for i, g := range gs {
		parts[i] = fmt.Sprintf("g%d", g)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// AppMsg is an application message submitted to atomic multicast: a unique
// ID, the destination groups dest(m), and an opaque payload.
type AppMsg struct {
	ID      MsgID
	Dest    GroupSet
	Payload []byte
}

// Clone returns a deep copy of the message (payload and destination set are
// copied, so the clone may be retained across API boundaries).
func (m AppMsg) Clone() AppMsg {
	out := AppMsg{ID: m.ID, Dest: m.Dest.Clone()}
	if m.Payload != nil {
		out.Payload = make([]byte, len(m.Payload))
		copy(out.Payload, m.Payload)
	}
	return out
}

func (m AppMsg) String() string {
	return fmt.Sprintf("%v→%v", m.ID, m.Dest)
}

// Delivery records the delivery of an application message at a process,
// together with the global timestamp the protocol assigned to it. Deliveries
// at one process happen in increasing (GTS, Sub) order; that pair exposes
// the system-wide total order to applications that need it (e.g. shared
// logs).
type Delivery struct {
	Msg AppMsg
	GTS Timestamp
	// Sub sub-sequences payloads that were ordered as one protocol-level
	// batch (internal/batch) and therefore share a GTS: the i-th payload of
	// a batch is delivered with Sub = i. Unbatched deliveries have Sub 0.
	Sub int
}

// Before reports whether d is ordered strictly before other in the global
// delivery order, which is lexicographic on (GTS, Sub).
func (d Delivery) Before(other Delivery) bool {
	if d.GTS != other.GTS {
		return d.GTS.Less(other.GTS)
	}
	return d.Sub < other.Sub
}

// Topology describes the static process-group layout: Groups[g] lists the
// 2f+1 replica ProcessIDs of group g. Groups are disjoint (paper §II).
type Topology struct {
	groups  [][]ProcessID
	groupOf map[ProcessID]GroupID
	// peersOf[p] is p's group members minus p, precomputed so protocol
	// fan-outs to "everyone else in my group" reuse one static slice.
	peersOf map[ProcessID][]ProcessID
}

// NewTopology validates and indexes a group layout. Every group must be
// non-empty and of odd size, and no process may appear twice.
func NewTopology(groups [][]ProcessID) (*Topology, error) {
	t := &Topology{
		groups:  make([][]ProcessID, len(groups)),
		groupOf: make(map[ProcessID]GroupID),
		peersOf: make(map[ProcessID][]ProcessID),
	}
	for g, members := range groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("mcast: group %d is empty", g)
		}
		if len(members)%2 == 0 {
			return nil, fmt.Errorf("mcast: group %d has even size %d; need 2f+1", g, len(members))
		}
		t.groups[g] = make([]ProcessID, len(members))
		copy(t.groups[g], members)
		for _, p := range members {
			if prev, dup := t.groupOf[p]; dup {
				return nil, fmt.Errorf("mcast: process %d in both group %d and group %d", p, prev, g)
			}
			t.groupOf[p] = GroupID(g)
		}
		for _, p := range members {
			peers := make([]ProcessID, 0, len(members)-1)
			for _, q := range members {
				if q != p {
					peers = append(peers, q)
				}
			}
			t.peersOf[p] = peers
		}
	}
	return t, nil
}

// UniformTopology builds a topology of k groups of n replicas each, with
// process IDs 0..k*n-1 assigned group-major.
func UniformTopology(k, n int) *Topology {
	groups := make([][]ProcessID, k)
	next := ProcessID(0)
	for g := range groups {
		groups[g] = make([]ProcessID, n)
		for i := range groups[g] {
			groups[g][i] = next
			next++
		}
	}
	t, err := NewTopology(groups)
	if err != nil {
		// Construction above cannot violate NewTopology's checks.
		panic("mcast: uniform topology invalid: " + err.Error())
	}
	return t
}

// NumGroups returns the number of groups.
func (t *Topology) NumGroups() int { return len(t.groups) }

// NumReplicas returns the total number of replica processes.
func (t *Topology) NumReplicas() int { return len(t.groupOf) }

// Members returns the replica IDs of group g. The returned slice must not be
// modified.
func (t *Topology) Members(g GroupID) []ProcessID { return t.groups[g] }

// GroupSize returns the number of replicas in group g.
func (t *Topology) GroupSize(g GroupID) int { return len(t.groups[g]) }

// Peers returns the members of p's group excluding p itself — the static
// recipient list for "everyone else in my group" fan-outs (heartbeats,
// state transfer, DELIVER replication). The returned slice must not be
// modified. It is nil if p is not a replica.
func (t *Topology) Peers(p ProcessID) []ProcessID { return t.peersOf[p] }

// QuorumSize returns f+1 for a group of 2f+1 replicas.
func (t *Topology) QuorumSize(g GroupID) int { return len(t.groups[g])/2 + 1 }

// GroupOf returns the group of process p, or NoGroup if p is not a replica
// (e.g. it is a client).
func (t *Topology) GroupOf(p ProcessID) GroupID {
	if g, ok := t.groupOf[p]; ok {
		return g
	}
	return NoGroup
}

// IsReplica reports whether p belongs to some group.
func (t *Topology) IsReplica(p ProcessID) bool {
	_, ok := t.groupOf[p]
	return ok
}

// Rank returns the index of p within its group, or -1 if p is not a replica.
func (t *Topology) Rank(p ProcessID) int {
	g, ok := t.groupOf[p]
	if !ok {
		return -1
	}
	for i, q := range t.groups[g] {
		if q == p {
			return i
		}
	}
	return -1
}

// AllGroups returns the set of every group in the topology.
func (t *Topology) AllGroups() GroupSet {
	gs := make(GroupSet, t.NumGroups())
	for i := range gs {
		gs[i] = GroupID(i)
	}
	return gs
}

// InitialLeader returns the conventional initial leader of group g (its
// first member) used by the pre-synchronised cluster bootstrap.
func (t *Topology) InitialLeader(g GroupID) ProcessID { return t.groups[g][0] }

// InitialBallot returns the conventional initial ballot (1, first member)
// that every replica of g starts in under the pre-synchronised bootstrap.
// Starting all replicas with cballot = InitialBallot is equivalent to having
// completed a leader recovery over the empty state.
func (t *Topology) InitialBallot(g GroupID) Ballot {
	return Ballot{N: 1, Proc: t.groups[g][0]}
}

package mcast

import "sync/atomic"

// ConflictRelation reports whether two application payloads conflict —
// whether their delivery order is observable by the application. Generic
// multicast (the genmcast protocol) totally orders only conflicting
// payloads; non-conflicting ("commuting") payloads may be delivered in
// different relative orders at different processes.
//
// Implementations must be symmetric (Conflicts(a,b) == Conflicts(b,a)),
// deterministic, and must not retain or mutate the slices. Reflexivity is
// not required by the protocol but any payload that does not commute with
// itself must conflict with itself. When in doubt, return true: any
// over-approximation of the true conflict relation is safe — it only
// forfeits reordering freedom — while an under-approximation breaks
// application consistency.
type ConflictRelation func(a, b []byte) bool

// MsgConflicts is a conflict relation lifted to whole protocol messages
// (internal/batch.Conflicts builds one from a ConflictRelation, expanding
// batch envelopes). Same contract: symmetric, deterministic, conservative.
type MsgConflicts func(a, b AppMsg) bool

// ConflictHolder is a late-bindable conflict relation shared between a
// replica's protocol state machine and the layers that configure it. The
// relation may be replaced while traffic flows (kv.AttachShard installs the
// key-based relation after the replica is constructed); because the default
// is the all-conflict relation and every legal replacement is a relation
// the application tolerates, tightening mid-stream is safe — messages
// ordered under the stricter relation were ordered under a superset of the
// constraints the new relation demands.
type ConflictHolder struct {
	v atomic.Value // holds conflictCell
}

type conflictCell struct{ rel MsgConflicts }

// NewConflictHolder builds a holder over rel; a nil rel is the
// all-conflict relation (total order — the safe default).
func NewConflictHolder(rel MsgConflicts) *ConflictHolder {
	h := &ConflictHolder{}
	h.Set(rel)
	return h
}

// Set replaces the relation. nil resets to all-conflict.
func (h *ConflictHolder) Set(rel MsgConflicts) { h.v.Store(conflictCell{rel}) }

// Conflicts applies the current relation. A nil holder or nil relation
// reports every pair as conflicting.
func (h *ConflictHolder) Conflicts(a, b AppMsg) bool {
	if h == nil {
		return true
	}
	cell, _ := h.v.Load().(conflictCell)
	if cell.rel == nil {
		return true
	}
	return cell.rel(a, b)
}

// Rel returns the currently installed message-level relation (nil when the
// holder is unset — the all-conflict default).
func (h *ConflictHolder) Rel() MsgConflicts {
	if h == nil {
		return nil
	}
	cell, _ := h.v.Load().(conflictCell)
	return cell.rel
}

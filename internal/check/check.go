// Package check verifies the atomic multicast specification of paper §II
// over recorded histories: Validity, Integrity, Ordering (existence of a
// global total order consistent with every process's delivery sequence),
// Termination at quiescence, and — when the protocol exposes global
// timestamps — agreement and uniqueness of timestamps (Fig. 6 Invariants
// 3(b) and 4).
package check

import (
	"fmt"
	"sort"

	"wbcast/internal/mcast"
)

// History accumulates the observable behaviour of a run.
type History struct {
	submitted  map[mcast.MsgID]submitInfo
	deliveries map[mcast.ProcessID][]mcast.Delivery
	procs      []mcast.ProcessID
}

type submitInfo struct {
	sender mcast.ProcessID
	dest   mcast.GroupSet
}

// NewHistory returns an empty history.
func NewHistory() *History {
	return &History{
		submitted:  make(map[mcast.MsgID]submitInfo),
		deliveries: make(map[mcast.ProcessID][]mcast.Delivery),
	}
}

// AddSubmit records that sender multicast message m.
func (h *History) AddSubmit(sender mcast.ProcessID, m mcast.AppMsg) {
	h.submitted[m.ID] = submitInfo{sender: sender, dest: m.Dest.Clone()}
}

// AddDelivery records that process p delivered d (in p's local order; call in
// sequence).
func (h *History) AddDelivery(p mcast.ProcessID, d mcast.Delivery) {
	if _, seen := h.deliveries[p]; !seen {
		h.procs = append(h.procs, p)
	}
	h.deliveries[p] = append(h.deliveries[p], d)
}

// NumDeliveries returns the total number of recorded deliveries.
func (h *History) NumDeliveries() int {
	n := 0
	for _, ds := range h.deliveries {
		n += len(ds)
	}
	return n
}

// Config parametrises a check.
type Config struct {
	// Topology maps processes to groups.
	Topology *mcast.Topology
	// Crashed lists processes that were crashed during the run; Termination
	// is not required of them.
	Crashed map[mcast.ProcessID]bool
	// AtQuiescence enables the Termination check: every message delivered
	// anywhere must be delivered by all correct members of every destination
	// group, and every message multicast by a correct (non-crashed) client
	// must be delivered everywhere it is addressed.
	AtQuiescence bool
	// CheckGTS enables the timestamp checks: deliveries at each process are
	// in strictly increasing (GTS, Sub) order; all processes agree on each
	// message's (GTS, Sub); distinct messages have distinct (GTS, Sub).
	// The Sub component sub-sequences payloads that were ordered as one
	// protocol-level batch and therefore share a GTS (internal/batch);
	// unbatched histories have Sub ≡ 0, reducing these to the paper's pure
	// GTS invariants.
	CheckGTS bool
	// Conflicts, when non-nil, switches Ordering and the per-process GTS
	// sequence check to the partial-order contract of the conflict-aware
	// (genmcast) protocol: only *conflicting* pairs of deliveries must
	// agree in order across processes and be stamp-ordered within each
	// process; commuting pairs may interleave freely. Stamp agreement,
	// uniqueness, Validity, Integrity and Termination are unchanged.
	Conflicts func(a, b mcast.AppMsg) bool
}

// Check verifies the history and returns all violations found.
func (h *History) Check(cfg Config) []error {
	var errs []error
	top := cfg.Topology

	// Validity + Integrity.
	for _, p := range h.procs {
		seen := make(map[mcast.MsgID]bool)
		for _, d := range h.deliveries[p] {
			info, ok := h.submitted[d.Msg.ID]
			if !ok {
				errs = append(errs, fmt.Errorf("validity: %v delivered at p%d but never multicast", d.Msg.ID, p))
				continue
			}
			g := top.GroupOf(p)
			if g == mcast.NoGroup || !info.dest.Contains(g) {
				errs = append(errs, fmt.Errorf("validity: p%d (group %d) delivered %v addressed to %v", p, g, d.Msg.ID, info.dest))
			}
			if seen[d.Msg.ID] {
				errs = append(errs, fmt.Errorf("integrity: p%d delivered %v twice", p, d.Msg.ID))
			}
			seen[d.Msg.ID] = true
		}
	}

	// Ordering: the union of per-process delivery precedences (restricted
	// to conflicting pairs in partial-order mode) must be acyclic; then a
	// topological extension is a valid total order ≺.
	errs = append(errs, h.checkOrdering(cfg.Conflicts)...)

	if cfg.CheckGTS {
		errs = append(errs, h.checkGTS(cfg.Conflicts)...)
	}

	if cfg.AtQuiescence {
		errs = append(errs, h.checkTermination(cfg)...)
	}
	return errs
}

// checkOrdering builds the precedence graph (edge m1→m2 when some process
// delivers m1 before m2) and reports cycles. Pairwise disagreement between
// two processes is a 2-cycle and is reported with a specific message. With
// a conflict relation, only conflicting pairs constrain the order — the
// graph omits edges between commuting messages, so processes may disagree
// on their relative order without creating a cycle.
func (h *History) checkOrdering(conflicts func(a, b mcast.AppMsg) bool) []error {
	var errs []error
	type edge struct{ a, b mcast.MsgID }
	edges := make(map[edge]mcast.ProcessID)
	adj := make(map[mcast.MsgID][]mcast.MsgID)
	indeg := make(map[mcast.MsgID]int)
	nodes := make(map[mcast.MsgID]bool)

	for _, p := range h.procs {
		ds := h.deliveries[p]
		for i := range ds {
			nodes[ds[i].Msg.ID] = true
		}
		for i := 0; i < len(ds); i++ {
			for j := i + 1; j < len(ds); j++ {
				a, b := ds[i].Msg.ID, ds[j].Msg.ID
				if a == b {
					continue // integrity violation reported elsewhere
				}
				if conflicts != nil && !conflicts(ds[i].Msg, ds[j].Msg) {
					continue // commuting pair: order unconstrained
				}
				if q, rev := edges[edge{b, a}]; rev {
					errs = append(errs, fmt.Errorf(
						"ordering: p%d delivers %v before %v but p%d delivers them in the opposite order", p, a, b, q))
					continue
				}
				if _, dup := edges[edge{a, b}]; !dup {
					edges[edge{a, b}] = p
					adj[a] = append(adj[a], b)
					indeg[b]++
				}
			}
		}
	}
	if len(errs) > 0 {
		return errs // 2-cycles already explain the problem
	}
	// Kahn's algorithm: leftover nodes indicate a (longer) cycle.
	var queue []mcast.MsgID
	for n := range nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	visited := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		visited++
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if visited != len(nodes) {
		errs = append(errs, fmt.Errorf("ordering: delivery precedence graph has a cycle (%d of %d messages in cycles)", len(nodes)-visited, len(nodes)))
	}
	return errs
}

// checkGTS verifies the timestamp-facing guarantees over the (GTS, Sub)
// pairs that order per-payload deliveries. With a conflict relation the
// per-process sequence check relaxes to conflicting pairs: every pair of
// conflicting deliveries at one process must appear in stamp order, while
// commuting deliveries may interleave out of stamp order.
func (h *History) checkGTS(conflicts func(a, b mcast.AppMsg) bool) []error {
	type stamp struct {
		gts mcast.Timestamp
		sub int
	}
	var errs []error
	gtsOf := make(map[mcast.MsgID]stamp)
	tsUsed := make(map[stamp]mcast.MsgID)
	for _, p := range h.procs {
		ds := h.deliveries[p]
		for i, d := range ds {
			if conflicts == nil {
				if i > 0 && !ds[i-1].Before(d) {
					errs = append(errs, fmt.Errorf("gts: p%d delivered %v with (GTS,sub) (%v,%d) not above previous (%v,%d)",
						p, d.Msg.ID, d.GTS, d.Sub, ds[i-1].GTS, ds[i-1].Sub))
				}
			} else {
				for j := 0; j < i; j++ {
					if d.Before(ds[j]) && conflicts(ds[j].Msg, d.Msg) {
						errs = append(errs, fmt.Errorf("gts: p%d delivered conflicting %v (GTS,sub) (%v,%d) after %v (%v,%d) — stamp order inverted",
							p, d.Msg.ID, d.GTS, d.Sub, ds[j].Msg.ID, ds[j].GTS, ds[j].Sub))
					}
				}
			}
			st := stamp{gts: d.GTS, sub: d.Sub}
			if want, ok := gtsOf[d.Msg.ID]; ok {
				if want != st {
					errs = append(errs, fmt.Errorf("gts: %v has (GTS,sub) (%v,%d) at p%d but (%v,%d) elsewhere (Invariant 3b)",
						d.Msg.ID, d.GTS, d.Sub, p, want.gts, want.sub))
				}
			} else {
				gtsOf[d.Msg.ID] = st
				if other, clash := tsUsed[st]; clash && other != d.Msg.ID {
					errs = append(errs, fmt.Errorf("gts: %v and %v share (GTS,sub) (%v,%d) (Invariant 4)", d.Msg.ID, other, d.GTS, d.Sub))
				}
				tsUsed[st] = d.Msg.ID
			}
		}
	}
	return errs
}

// checkTermination verifies the paper's Termination property at quiescence.
func (h *History) checkTermination(cfg Config) []error {
	var errs []error
	top := cfg.Topology
	deliveredBy := make(map[mcast.MsgID]map[mcast.ProcessID]bool)
	for _, p := range h.procs {
		for _, d := range h.deliveries[p] {
			set := deliveredBy[d.Msg.ID]
			if set == nil {
				set = make(map[mcast.ProcessID]bool)
				deliveredBy[d.Msg.ID] = set
			}
			set[p] = true
		}
	}
	// Required: delivered anywhere, or multicast by a correct client.
	required := make(map[mcast.MsgID]bool)
	for id := range deliveredBy {
		required[id] = true
	}
	for id, info := range h.submitted {
		if !cfg.Crashed[info.sender] {
			required[id] = true
		}
	}
	var ids []mcast.MsgID
	for id := range required {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		info, ok := h.submitted[id]
		if !ok {
			continue // validity violation reported elsewhere
		}
		for _, g := range info.dest {
			for _, p := range top.Members(g) {
				if cfg.Crashed[p] {
					continue
				}
				if !deliveredBy[id][p] {
					errs = append(errs, fmt.Errorf("termination: correct p%d (group %d) never delivered %v", p, g, id))
				}
			}
		}
	}
	return errs
}

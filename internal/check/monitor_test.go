package check

import (
	"strings"
	"testing"

	"wbcast/internal/mcast"
)

func monitorFixture() (*Monitor, []mcast.AppMsg) {
	top := mcast.UniformTopology(2, 3)
	mo := NewMonitor(top)
	msgs := make([]mcast.AppMsg, 3)
	for i := range msgs {
		msgs[i] = mcast.AppMsg{ID: mcast.MakeMsgID(9, uint32(i+1)), Dest: mcast.NewGroupSet(0, 1)}
		mo.NoteSubmit(9, msgs[i])
	}
	return mo, msgs
}

func del(m mcast.AppMsg, t uint64) mcast.Delivery {
	return mcast.Delivery{Msg: m, GTS: mcast.Timestamp{Time: t, Group: 0}}
}

func firstErr(mo *Monitor) string {
	if errs := mo.Errs(); len(errs) > 0 {
		return errs[0].Error()
	}
	return ""
}

func TestMonitorCleanRun(t *testing.T) {
	mo, ms := monitorFixture()
	for _, p := range []mcast.ProcessID{0, 1, 3} {
		for i, m := range ms {
			mo.NoteDelivery(p, del(m, uint64(i+1)))
		}
	}
	if e := firstErr(mo); e != "" {
		t.Fatalf("clean run flagged: %v", e)
	}
}

func TestMonitorCatchesDuplicate(t *testing.T) {
	mo, ms := monitorFixture()
	mo.NoteDelivery(0, del(ms[0], 1))
	mo.NoteDelivery(0, del(ms[0], 1))
	if e := firstErr(mo); !strings.Contains(e, "integrity") {
		t.Fatalf("duplicate not flagged: %q", e)
	}
}

func TestMonitorCatchesGap(t *testing.T) {
	mo, ms := monitorFixture()
	// p0 establishes the group-0 log [m0, m1]; p1 skips m0.
	mo.NoteDelivery(0, del(ms[0], 1))
	mo.NoteDelivery(0, del(ms[1], 2))
	mo.NoteDelivery(1, del(ms[1], 2))
	if e := firstErr(mo); !strings.Contains(e, "gap") {
		t.Fatalf("gap not flagged: %q", e)
	}
}

func TestMonitorCatchesStampDisagreement(t *testing.T) {
	mo, ms := monitorFixture()
	mo.NoteDelivery(0, del(ms[0], 1))
	mo.NoteDelivery(3, del(ms[0], 2)) // different group, different GTS claim
	if e := firstErr(mo); !strings.Contains(e, "Invariant 3b") {
		t.Fatalf("stamp disagreement not flagged: %q", e)
	}
}

func TestMonitorCatchesStampReuse(t *testing.T) {
	mo, ms := monitorFixture()
	mo.NoteDelivery(0, del(ms[0], 1))
	mo.NoteDelivery(3, del(ms[1], 1)) // same (GTS, Sub) for another message
	if e := firstErr(mo); !strings.Contains(e, "Invariant 4") {
		t.Fatalf("stamp reuse not flagged: %q", e)
	}
}

func TestMonitorCatchesUnsubmittedAndMisaddressed(t *testing.T) {
	top := mcast.UniformTopology(2, 3)
	mo := NewMonitor(top)
	ghost := mcast.AppMsg{ID: mcast.MakeMsgID(9, 99), Dest: mcast.NewGroupSet(0)}
	mo.NoteDelivery(0, del(ghost, 1))
	if e := firstErr(mo); !strings.Contains(e, "validity") {
		t.Fatalf("unsubmitted delivery not flagged: %q", e)
	}

	mo2 := NewMonitor(top)
	only0 := mcast.AppMsg{ID: mcast.MakeMsgID(9, 1), Dest: mcast.NewGroupSet(0)}
	mo2.NoteSubmit(9, only0)
	mo2.NoteDelivery(3, del(only0, 1)) // p3 is in group 1, not addressed
	if e := firstErr(mo2); !strings.Contains(e, "validity") {
		t.Fatalf("misaddressed delivery not flagged: %q", e)
	}
}

package check

import (
	"strings"
	"testing"

	"wbcast/internal/mcast"
)

func monitorFixture() (*Monitor, []mcast.AppMsg) {
	top := mcast.UniformTopology(2, 3)
	mo := NewMonitor(top)
	msgs := make([]mcast.AppMsg, 3)
	for i := range msgs {
		msgs[i] = mcast.AppMsg{ID: mcast.MakeMsgID(9, uint32(i+1)), Dest: mcast.NewGroupSet(0, 1)}
		mo.NoteSubmit(9, msgs[i])
	}
	return mo, msgs
}

func del(m mcast.AppMsg, t uint64) mcast.Delivery {
	return mcast.Delivery{Msg: m, GTS: mcast.Timestamp{Time: t, Group: 0}}
}

func firstErr(mo *Monitor) string {
	if errs := mo.Errs(); len(errs) > 0 {
		return errs[0].Error()
	}
	return ""
}

func TestMonitorCleanRun(t *testing.T) {
	mo, ms := monitorFixture()
	for _, p := range []mcast.ProcessID{0, 1, 3} {
		for i, m := range ms {
			mo.NoteDelivery(p, del(m, uint64(i+1)))
		}
	}
	if e := firstErr(mo); e != "" {
		t.Fatalf("clean run flagged: %v", e)
	}
}

func TestMonitorCatchesDuplicate(t *testing.T) {
	mo, ms := monitorFixture()
	mo.NoteDelivery(0, del(ms[0], 1))
	mo.NoteDelivery(0, del(ms[0], 1))
	if e := firstErr(mo); !strings.Contains(e, "integrity") {
		t.Fatalf("duplicate not flagged: %q", e)
	}
}

func TestMonitorCatchesGap(t *testing.T) {
	mo, ms := monitorFixture()
	// p0 establishes the group-0 log [m0, m1]; p1 skips m0.
	mo.NoteDelivery(0, del(ms[0], 1))
	mo.NoteDelivery(0, del(ms[1], 2))
	mo.NoteDelivery(1, del(ms[1], 2))
	if e := firstErr(mo); !strings.Contains(e, "gap") {
		t.Fatalf("gap not flagged: %q", e)
	}
}

func TestMonitorCatchesStampDisagreement(t *testing.T) {
	mo, ms := monitorFixture()
	mo.NoteDelivery(0, del(ms[0], 1))
	mo.NoteDelivery(3, del(ms[0], 2)) // different group, different GTS claim
	if e := firstErr(mo); !strings.Contains(e, "Invariant 3b") {
		t.Fatalf("stamp disagreement not flagged: %q", e)
	}
}

func TestMonitorCatchesStampReuse(t *testing.T) {
	mo, ms := monitorFixture()
	mo.NoteDelivery(0, del(ms[0], 1))
	mo.NoteDelivery(3, del(ms[1], 1)) // same (GTS, Sub) for another message
	if e := firstErr(mo); !strings.Contains(e, "Invariant 4") {
		t.Fatalf("stamp reuse not flagged: %q", e)
	}
}

func TestMonitorCatchesUnsubmittedAndMisaddressed(t *testing.T) {
	top := mcast.UniformTopology(2, 3)
	mo := NewMonitor(top)
	ghost := mcast.AppMsg{ID: mcast.MakeMsgID(9, 99), Dest: mcast.NewGroupSet(0)}
	mo.NoteDelivery(0, del(ghost, 1))
	if e := firstErr(mo); !strings.Contains(e, "validity") {
		t.Fatalf("unsubmitted delivery not flagged: %q", e)
	}

	mo2 := NewMonitor(top)
	only0 := mcast.AppMsg{ID: mcast.MakeMsgID(9, 1), Dest: mcast.NewGroupSet(0)}
	mo2.NoteSubmit(9, only0)
	mo2.NoteDelivery(3, del(only0, 1)) // p3 is in group 1, not addressed
	if e := firstErr(mo2); !strings.Contains(e, "validity") {
		t.Fatalf("misaddressed delivery not flagged: %q", e)
	}
}

// partialFixture builds a partial-order monitor over a first-byte conflict
// relation: payloads conflict iff their first bytes match. Messages a1, a2
// conflict with each other; b commutes with both.
func partialFixture() (*Monitor, mcast.AppMsg, mcast.AppMsg, mcast.AppMsg) {
	top := mcast.UniformTopology(2, 3)
	conflicts := func(x, y mcast.AppMsg) bool {
		return len(x.Payload) > 0 && len(y.Payload) > 0 && x.Payload[0] == y.Payload[0]
	}
	mo := NewPartialMonitor(top, conflicts)
	mk := func(seq uint32, payload string) mcast.AppMsg {
		m := mcast.AppMsg{ID: mcast.MakeMsgID(9, seq), Dest: mcast.NewGroupSet(0, 1), Payload: []byte(payload)}
		mo.NoteSubmit(9, m)
		return m
	}
	return mo, mk(1, "a1"), mk(2, "a2"), mk(3, "b")
}

// TestPartialMonitorCatchesConflictingInversion: two destinations deliver a
// conflicting pair in opposite orders; the process that violates stamp
// order must be flagged.
func TestPartialMonitorCatchesConflictingInversion(t *testing.T) {
	mo, a1, a2, _ := partialFixture()
	mo.NoteDelivery(0, del(a1, 1))
	mo.NoteDelivery(0, del(a2, 2)) // p0: stamp order — fine
	mo.NoteDelivery(3, del(a2, 2))
	mo.NoteDelivery(3, del(a1, 1)) // p3: conflicting pair inverted
	if e := firstErr(mo); !strings.Contains(e, "stamp order inverted") {
		t.Fatalf("conflicting inversion not flagged: %q", e)
	}
}

// TestPartialMonitorAllowsCommutingReorder is the false-positive guard:
// commuting deliveries in different orders at different processes are the
// whole point of generic multicast and must not be flagged.
func TestPartialMonitorAllowsCommutingReorder(t *testing.T) {
	mo, a1, a2, b := partialFixture()
	// p0 delivers b (stamp 3) first, then the a's in stamp order.
	mo.NoteDelivery(0, del(b, 3))
	mo.NoteDelivery(0, del(a1, 1))
	mo.NoteDelivery(0, del(a2, 2))
	// p3 interleaves b between the a's; p4 delivers it last.
	mo.NoteDelivery(3, del(a1, 1))
	mo.NoteDelivery(3, del(b, 3))
	mo.NoteDelivery(3, del(a2, 2))
	mo.NoteDelivery(4, del(a1, 1))
	mo.NoteDelivery(4, del(a2, 2))
	mo.NoteDelivery(4, del(b, 3))
	if e := firstErr(mo); e != "" {
		t.Fatalf("commuting reorder falsely flagged: %q", e)
	}
}

// TestPartialMonitorNoGapCheck: in partial mode group members may expose
// genuinely different delivery sequences (commuting prefixes), so the
// strict per-group gap check must be off.
func TestPartialMonitorNoGapCheck(t *testing.T) {
	mo, a1, a2, b := partialFixture()
	mo.NoteDelivery(0, del(a1, 1))
	mo.NoteDelivery(0, del(a2, 2))
	mo.NoteDelivery(1, del(b, 3)) // p1 starts with a message p0 hasn't seen
	if e := firstErr(mo); e != "" {
		t.Fatalf("divergent commuting sequences falsely flagged: %q", e)
	}
}

// TestPartialMonitorKeepsStampInvariants: exactly-once, stamp agreement and
// stamp uniqueness are mode-independent and must survive the relaxation.
func TestPartialMonitorKeepsStampInvariants(t *testing.T) {
	mo, a1, _, _ := partialFixture()
	mo.NoteDelivery(0, del(a1, 1))
	mo.NoteDelivery(0, del(a1, 1))
	if e := firstErr(mo); !strings.Contains(e, "integrity") {
		t.Fatalf("duplicate not flagged in partial mode: %q", e)
	}

	mo2, b1, _, _ := partialFixture()
	mo2.NoteDelivery(0, del(b1, 1))
	mo2.NoteDelivery(3, del(b1, 2))
	if e := firstErr(mo2); !strings.Contains(e, "Invariant 3b") {
		t.Fatalf("stamp disagreement not flagged in partial mode: %q", e)
	}

	mo3, c1, c2, _ := partialFixture()
	mo3.NoteDelivery(0, del(c1, 1))
	mo3.NoteDelivery(3, del(c2, 1))
	if e := firstErr(mo3); !strings.Contains(e, "Invariant 4") {
		t.Fatalf("stamp reuse not flagged in partial mode: %q", e)
	}
}

// TestPartialMonitorNilRelationOrdersEverything: a nil relation must mean
// all-conflict — any out-of-stamp-order pair is an inversion.
func TestPartialMonitorNilRelationOrdersEverything(t *testing.T) {
	top := mcast.UniformTopology(2, 3)
	mo := NewPartialMonitor(top, nil)
	m1 := mcast.AppMsg{ID: mcast.MakeMsgID(9, 1), Dest: mcast.NewGroupSet(0), Payload: []byte("x")}
	m2 := mcast.AppMsg{ID: mcast.MakeMsgID(9, 2), Dest: mcast.NewGroupSet(0), Payload: []byte("y")}
	mo.NoteSubmit(9, m1)
	mo.NoteSubmit(9, m2)
	mo.NoteDelivery(0, del(m2, 2))
	mo.NoteDelivery(0, del(m1, 1))
	if e := firstErr(mo); !strings.Contains(e, "stamp order inverted") {
		t.Fatalf("inversion under nil relation not flagged: %q", e)
	}
}

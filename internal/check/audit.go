package check

import (
	"fmt"

	"wbcast/internal/mcast"
	"wbcast/internal/msgs"
	"wbcast/internal/node"
	"wbcast/internal/sim"
)

// WbAudit observes the white-box protocol's traffic (via the simulator's
// trace hook) and checks the communication-level invariants of paper Fig. 6
// that are expressible over messages:
//
//	Invariant 1:  ACCEPT(m, g, b, lts) carries one lts per (m, g, b).
//	Invariant 3a: DELIVER(m, _, lts, _) to the same group carries one lts.
//	Invariant 3b: DELIVER(m, _, _, gts) carries one gts anywhere.
//	Invariant 4:  distinct messages never share a gts.
type WbAudit struct {
	top        *mcast.Topology
	acceptLTS  map[acceptKey]mcast.Timestamp
	deliverLTS map[deliverKey]mcast.Timestamp
	deliverGTS map[mcast.MsgID]mcast.Timestamp
	gtsOwner   map[mcast.Timestamp]mcast.MsgID
	errs       []error
	accepts    int
	delivers   int
}

type acceptKey struct {
	id    mcast.MsgID
	group mcast.GroupID
	bal   mcast.Ballot
}

type deliverKey struct {
	id    mcast.MsgID
	group mcast.GroupID
}

// NewWbAudit builds an auditor for the given topology.
func NewWbAudit(top *mcast.Topology) *WbAudit {
	return &WbAudit{
		top:        top,
		acceptLTS:  make(map[acceptKey]mcast.Timestamp),
		deliverLTS: make(map[deliverKey]mcast.Timestamp),
		deliverGTS: make(map[mcast.MsgID]mcast.Timestamp),
		gtsOwner:   make(map[mcast.Timestamp]mcast.MsgID),
	}
}

// Trace is a sim.Config.Trace hook.
func (a *WbAudit) Trace(ev sim.TraceEvent) {
	rcv, ok := ev.In.(node.Recv)
	if !ok {
		return
	}
	switch m := rcv.Msg.(type) {
	case msgs.Accept:
		a.accepts++
		k := acceptKey{id: m.M.ID, group: m.Group, bal: m.Bal}
		if prev, seen := a.acceptLTS[k]; seen {
			if prev != m.LTS {
				a.errs = append(a.errs, fmt.Errorf(
					"invariant 1: ACCEPT(%v, g%d, %v) carried lts %v and %v", m.M.ID, m.Group, m.Bal, prev, m.LTS))
			}
		} else {
			a.acceptLTS[k] = m.LTS
		}
	case msgs.Deliver:
		a.delivers++
		g := a.top.GroupOf(ev.Proc)
		dk := deliverKey{id: m.ID, group: g}
		if prev, seen := a.deliverLTS[dk]; seen {
			if prev != m.LTS {
				a.errs = append(a.errs, fmt.Errorf(
					"invariant 3a: DELIVER(%v) to group %d carried lts %v and %v", m.ID, g, prev, m.LTS))
			}
		} else {
			a.deliverLTS[dk] = m.LTS
		}
		if prev, seen := a.deliverGTS[m.ID]; seen {
			if prev != m.GTS {
				a.errs = append(a.errs, fmt.Errorf(
					"invariant 3b: DELIVER(%v) carried gts %v and %v", m.ID, prev, m.GTS))
			}
		} else {
			a.deliverGTS[m.ID] = m.GTS
			if other, clash := a.gtsOwner[m.GTS]; clash && other != m.ID {
				a.errs = append(a.errs, fmt.Errorf(
					"invariant 4: %v and %v share gts %v", m.ID, other, m.GTS))
			}
			a.gtsOwner[m.GTS] = m.ID
		}
	}
}

// Errors returns all invariant violations observed so far.
func (a *WbAudit) Errors() []error { return a.errs }

// Counts returns how many ACCEPT and DELIVER receptions were audited.
func (a *WbAudit) Counts() (accepts, delivers int) { return a.accepts, a.delivers }

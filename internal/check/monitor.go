package check

import (
	"fmt"

	"wbcast/internal/mcast"
)

// Monitor is the incremental safety checker used during chaos runs: it
// verifies every delivery as it happens, in O(1) amortised per delivery,
// so an invariant violation is caught at the moment (and virtual time) it
// occurs rather than at the end of the run. It checks, continuously:
//
//   - validity: only submitted messages are delivered, and only at members
//     of an addressed group;
//   - exactly-once: no process delivers the same message twice;
//   - total order: each process's deliveries carry strictly increasing
//     (GTS, Sub) stamps, all processes agree on every message's stamp, and
//     no two messages share a stamp — together these imply the existence
//     of a global total order consistent with every delivery sequence;
//   - gap-freedom: all members of a group deliver exactly the same
//     sequence of messages — each member's delivery log is a prefix of the
//     group's canonical log, so nobody skips over (or reorders within) the
//     group's projection of the total order.
//
// Liveness (Termination) is inherently a quiescence property and stays in
// History.Check; run both, pouring the same records into each.
type Monitor struct {
	top       *mcast.Topology
	submitted map[mcast.MsgID]submitInfo
	stampOf   map[mcast.MsgID]stampKey
	stampUsed map[stampKey]mcast.MsgID
	last      map[mcast.ProcessID]stampKey
	hasLast   map[mcast.ProcessID]bool
	seen      map[mcast.ProcessID]map[mcast.MsgID]bool
	// groupLog is the canonical per-group delivery sequence, grown by
	// whichever member is furthest ahead; pos is each process's index into
	// its group's log.
	groupLog map[mcast.GroupID][]groupEntry
	pos      map[mcast.ProcessID]int

	errs []error
}

type stampKey struct {
	gts mcast.Timestamp
	sub int
}

type groupEntry struct {
	id    mcast.MsgID
	stamp stampKey
}

// NewMonitor builds an empty monitor over the topology.
func NewMonitor(top *mcast.Topology) *Monitor {
	return &Monitor{
		top:       top,
		submitted: make(map[mcast.MsgID]submitInfo),
		stampOf:   make(map[mcast.MsgID]stampKey),
		stampUsed: make(map[stampKey]mcast.MsgID),
		last:      make(map[mcast.ProcessID]stampKey),
		hasLast:   make(map[mcast.ProcessID]bool),
		seen:      make(map[mcast.ProcessID]map[mcast.MsgID]bool),
		groupLog:  make(map[mcast.GroupID][]groupEntry),
		pos:       make(map[mcast.ProcessID]int),
	}
}

// NoteSubmit records that sender multicast m.
func (mo *Monitor) NoteSubmit(sender mcast.ProcessID, m mcast.AppMsg) {
	if _, dup := mo.submitted[m.ID]; dup {
		return
	}
	mo.submitted[m.ID] = submitInfo{sender: sender, dest: m.Dest.Clone()}
}

// NoteDelivery checks one delivery at process p against every continuous
// invariant, accumulating violations (retrieve them with Errs).
func (mo *Monitor) NoteDelivery(p mcast.ProcessID, d mcast.Delivery) {
	id := d.Msg.ID
	st := stampKey{gts: d.GTS, sub: d.Sub}

	info, ok := mo.submitted[id]
	if !ok {
		mo.fail("validity: %v delivered at p%d but never multicast", id, p)
	} else {
		g := mo.top.GroupOf(p)
		if g == mcast.NoGroup || !info.dest.Contains(g) {
			mo.fail("validity: p%d (group %d) delivered %v addressed to %v", p, g, id, info.dest)
		}
	}

	if mo.seen[p] == nil {
		mo.seen[p] = make(map[mcast.MsgID]bool)
	}
	if mo.seen[p][id] {
		mo.fail("integrity: p%d delivered %v twice", p, id)
		return // the sequence checks below would only cascade
	}
	mo.seen[p][id] = true

	if mo.hasLast[p] && !less(mo.last[p], st) {
		mo.fail("gts: p%d delivered %v with (GTS,sub) (%v,%d) not above previous (%v,%d)",
			p, id, st.gts, st.sub, mo.last[p].gts, mo.last[p].sub)
	}
	mo.last[p], mo.hasLast[p] = st, true

	if want, ok := mo.stampOf[id]; ok {
		if want != st {
			mo.fail("gts: %v has (GTS,sub) (%v,%d) at p%d but (%v,%d) elsewhere (Invariant 3b)",
				id, st.gts, st.sub, p, want.gts, want.sub)
		}
	} else {
		mo.stampOf[id] = st
		if other, clash := mo.stampUsed[st]; clash && other != id {
			mo.fail("gts: %v and %v share (GTS,sub) (%v,%d) (Invariant 4)", id, other, st.gts, st.sub)
		}
		mo.stampUsed[st] = id
	}

	// Gap-freedom: p's next delivery must be the next entry of its group's
	// canonical log (extending the log if p is the frontier member).
	g := mo.top.GroupOf(p)
	if g == mcast.NoGroup {
		return // validity violation reported above
	}
	i := mo.pos[p]
	log := mo.groupLog[g]
	if i < len(log) {
		if log[i].id != id {
			mo.fail("gap: p%d delivered %v at group position %d where %v (GTS %v) was delivered by its peers",
				p, id, i, log[i].id, log[i].stamp.gts)
		}
	} else {
		mo.groupLog[g] = append(log, groupEntry{id: id, stamp: st})
	}
	mo.pos[p] = i + 1
}

// Errs returns every violation observed so far, in detection order.
func (mo *Monitor) Errs() []error { return mo.errs }

func (mo *Monitor) fail(format string, args ...any) {
	mo.errs = append(mo.errs, fmt.Errorf(format, args...))
}

func less(a, b stampKey) bool {
	if a.gts != b.gts {
		return a.gts.Less(b.gts)
	}
	return a.sub < b.sub
}

package check

import (
	"fmt"

	"wbcast/internal/mcast"
)

// Monitor is the incremental safety checker used during chaos runs: it
// verifies every delivery as it happens, in O(1) amortised per delivery,
// so an invariant violation is caught at the moment (and virtual time) it
// occurs rather than at the end of the run. It checks, continuously:
//
//   - validity: only submitted messages are delivered, and only at members
//     of an addressed group;
//   - exactly-once: no process delivers the same message twice;
//   - total order: each process's deliveries carry strictly increasing
//     (GTS, Sub) stamps, all processes agree on every message's stamp, and
//     no two messages share a stamp — together these imply the existence
//     of a global total order consistent with every delivery sequence;
//   - gap-freedom: all members of a group deliver exactly the same
//     sequence of messages — each member's delivery log is a prefix of the
//     group's canonical log, so nobody skips over (or reorders within) the
//     group's projection of the total order.
//
// Liveness (Termination) is inherently a quiescence property and stays in
// History.Check; run both, pouring the same records into each.
//
// A monitor built with NewPartialMonitor instead checks the partial-order
// contract of the conflict-aware (genmcast) protocol: validity, exactly-once
// and the stamp invariants are unchanged, but per-process delivery order is
// only required between *conflicting* deliveries — every pair of conflicting
// deliveries must appear in stamp order at every process that delivers both,
// while commuting deliveries may interleave freely (so the strict
// stamp-monotonicity and group gap-freedom checks do not apply).
type Monitor struct {
	top       *mcast.Topology
	submitted map[mcast.MsgID]submitInfo
	stampOf   map[mcast.MsgID]stampKey
	stampUsed map[stampKey]mcast.MsgID
	last      map[mcast.ProcessID]stampKey
	hasLast   map[mcast.ProcessID]bool
	seen      map[mcast.ProcessID]map[mcast.MsgID]bool
	// groupLog is the canonical per-group delivery sequence, grown by
	// whichever member is furthest ahead; pos is each process's index into
	// its group's log.
	groupLog map[mcast.GroupID][]groupEntry
	pos      map[mcast.ProcessID]int

	// Partial-order mode (NewPartialMonitor): the conflict relation over
	// delivered payloads, and each process's full delivery log — every new
	// delivery is checked for stamp order against all prior conflicting
	// deliveries at that process.
	conflicts func(a, b mcast.AppMsg) bool
	plog      map[mcast.ProcessID][]pdeliv

	errs []error
}

type pdeliv struct {
	stamp stampKey
	msg   mcast.AppMsg
}

type stampKey struct {
	gts mcast.Timestamp
	sub int
}

type groupEntry struct {
	id    mcast.MsgID
	stamp stampKey
}

// NewMonitor builds an empty monitor over the topology.
func NewMonitor(top *mcast.Topology) *Monitor {
	return &Monitor{
		top:       top,
		submitted: make(map[mcast.MsgID]submitInfo),
		stampOf:   make(map[mcast.MsgID]stampKey),
		stampUsed: make(map[stampKey]mcast.MsgID),
		last:      make(map[mcast.ProcessID]stampKey),
		hasLast:   make(map[mcast.ProcessID]bool),
		seen:      make(map[mcast.ProcessID]map[mcast.MsgID]bool),
		groupLog:  make(map[mcast.GroupID][]groupEntry),
		pos:       make(map[mcast.ProcessID]int),
	}
}

// NewPartialMonitor builds a monitor for the conflict-aware delivery
// contract: conflicting deliveries must be stamp-ordered at every common
// process, commuting deliveries are unconstrained. A nil conflicts relation
// treats every pair as conflicting (ordering every pair without requiring
// the strict per-process sequence).
func NewPartialMonitor(top *mcast.Topology, conflicts func(a, b mcast.AppMsg) bool) *Monitor {
	mo := NewMonitor(top)
	if conflicts == nil {
		conflicts = func(a, b mcast.AppMsg) bool { return true }
	}
	mo.conflicts = conflicts
	mo.plog = make(map[mcast.ProcessID][]pdeliv)
	return mo
}

// NoteSubmit records that sender multicast m.
func (mo *Monitor) NoteSubmit(sender mcast.ProcessID, m mcast.AppMsg) {
	if _, dup := mo.submitted[m.ID]; dup {
		return
	}
	mo.submitted[m.ID] = submitInfo{sender: sender, dest: m.Dest.Clone()}
}

// NoteDelivery checks one delivery at process p against every continuous
// invariant, accumulating violations (retrieve them with Errs).
func (mo *Monitor) NoteDelivery(p mcast.ProcessID, d mcast.Delivery) {
	id := d.Msg.ID
	st := stampKey{gts: d.GTS, sub: d.Sub}

	info, ok := mo.submitted[id]
	if !ok {
		mo.fail("validity: %v delivered at p%d but never multicast", id, p)
	} else {
		g := mo.top.GroupOf(p)
		if g == mcast.NoGroup || !info.dest.Contains(g) {
			mo.fail("validity: p%d (group %d) delivered %v addressed to %v", p, g, id, info.dest)
		}
	}

	if mo.seen[p] == nil {
		mo.seen[p] = make(map[mcast.MsgID]bool)
	}
	if mo.seen[p][id] {
		mo.fail("integrity: p%d delivered %v twice", p, id)
		return // the sequence checks below would only cascade
	}
	mo.seen[p][id] = true

	if mo.plog == nil {
		if mo.hasLast[p] && !less(mo.last[p], st) {
			mo.fail("gts: p%d delivered %v with (GTS,sub) (%v,%d) not above previous (%v,%d)",
				p, id, st.gts, st.sub, mo.last[p].gts, mo.last[p].sub)
		}
		mo.last[p], mo.hasLast[p] = st, true
	}

	if want, ok := mo.stampOf[id]; ok {
		if want != st {
			mo.fail("gts: %v has (GTS,sub) (%v,%d) at p%d but (%v,%d) elsewhere (Invariant 3b)",
				id, st.gts, st.sub, p, want.gts, want.sub)
		}
	} else {
		mo.stampOf[id] = st
		if other, clash := mo.stampUsed[st]; clash && other != id {
			mo.fail("gts: %v and %v share (GTS,sub) (%v,%d) (Invariant 4)", id, other, st.gts, st.sub)
		}
		mo.stampUsed[st] = id
	}

	if mo.plog != nil {
		// Partial order: every prior conflicting delivery at p must carry a
		// smaller stamp. Commuting deliveries may interleave freely, so the
		// strict sequence and gap checks below do not apply.
		for _, prev := range mo.plog[p] {
			if less(st, prev.stamp) && mo.conflicts(prev.msg, d.Msg) {
				mo.fail("order: p%d delivered conflicting %v (GTS,sub) (%v,%d) after %v (%v,%d) — stamp order inverted",
					p, id, st.gts, st.sub, prev.msg.ID, prev.stamp.gts, prev.stamp.sub)
			}
		}
		mo.plog[p] = append(mo.plog[p], pdeliv{stamp: st, msg: d.Msg.Clone()})
		return
	}

	// Gap-freedom: p's next delivery must be the next entry of its group's
	// canonical log (extending the log if p is the frontier member).
	g := mo.top.GroupOf(p)
	if g == mcast.NoGroup {
		return // validity violation reported above
	}
	i := mo.pos[p]
	log := mo.groupLog[g]
	if i < len(log) {
		if log[i].id != id {
			mo.fail("gap: p%d delivered %v at group position %d where %v (GTS %v) was delivered by its peers",
				p, id, i, log[i].id, log[i].stamp.gts)
		}
	} else {
		mo.groupLog[g] = append(log, groupEntry{id: id, stamp: st})
	}
	mo.pos[p] = i + 1
}

// Errs returns every violation observed so far, in detection order.
func (mo *Monitor) Errs() []error { return mo.errs }

func (mo *Monitor) fail(format string, args ...any) {
	mo.errs = append(mo.errs, fmt.Errorf(format, args...))
}

func less(a, b stampKey) bool {
	if a.gts != b.gts {
		return a.gts.Less(b.gts)
	}
	return a.sub < b.sub
}

package check_test

import (
	"testing"

	"wbcast/internal/check"
	"wbcast/internal/mcast"
)

func msg(seq uint32, dest ...mcast.GroupID) mcast.AppMsg {
	return mcast.AppMsg{ID: mcast.MakeMsgID(100, seq), Dest: mcast.NewGroupSet(dest...)}
}

func del(m mcast.AppMsg, t uint64, g mcast.GroupID) mcast.Delivery {
	return mcast.Delivery{Msg: m, GTS: mcast.Timestamp{Time: t, Group: g}}
}

func base(t *testing.T) (*check.History, *mcast.Topology, check.Config) {
	t.Helper()
	top := mcast.UniformTopology(2, 1) // processes 0 and 1
	h := check.NewHistory()
	return h, top, check.Config{Topology: top, AtQuiescence: true, CheckGTS: true}
}

func TestCleanHistoryPasses(t *testing.T) {
	h, _, cfg := base(t)
	a, b := msg(1, 0, 1), msg(2, 0)
	h.AddSubmit(100, a)
	h.AddSubmit(100, b)
	h.AddDelivery(0, del(a, 1, 0))
	h.AddDelivery(0, del(b, 2, 0))
	h.AddDelivery(1, del(a, 1, 0))
	if errs := h.Check(cfg); len(errs) != 0 {
		t.Fatalf("clean history flagged: %v", errs)
	}
	if h.NumDeliveries() != 3 {
		t.Errorf("NumDeliveries = %d", h.NumDeliveries())
	}
}

func TestValidityViolations(t *testing.T) {
	h, _, cfg := base(t)
	ghost := msg(9, 0)
	h.AddDelivery(0, del(ghost, 1, 0)) // never submitted
	wrongDest := msg(2, 1)
	h.AddSubmit(100, wrongDest)
	h.AddDelivery(0, del(wrongDest, 2, 0)) // delivered outside dest
	errs := h.Check(cfg)
	if len(errs) < 2 {
		t.Fatalf("expected ≥2 validity violations, got %v", errs)
	}
}

func TestIntegrityViolation(t *testing.T) {
	h, _, cfg := base(t)
	a := msg(1, 0)
	h.AddSubmit(100, a)
	h.AddDelivery(0, del(a, 1, 0))
	h.AddDelivery(0, del(a, 1, 0))
	found := false
	for _, err := range h.Check(cfg) {
		if containsStr(err.Error(), "integrity") {
			found = true
		}
	}
	if !found {
		t.Fatal("duplicate delivery not flagged")
	}
}

func TestOrderingDisagreementFlagged(t *testing.T) {
	h, _, cfg := base(t)
	cfg.CheckGTS = false // isolate the order check from GTS checks
	a, b := msg(1, 0, 1), msg(2, 0, 1)
	h.AddSubmit(100, a)
	h.AddSubmit(100, b)
	h.AddDelivery(0, del(a, 1, 0))
	h.AddDelivery(0, del(b, 2, 0))
	h.AddDelivery(1, del(b, 2, 0))
	h.AddDelivery(1, del(a, 1, 0)) // opposite order at p1
	found := false
	for _, err := range h.Check(cfg) {
		if containsStr(err.Error(), "ordering") {
			found = true
		}
	}
	if !found {
		t.Fatal("ordering disagreement not flagged")
	}
}

func TestGTSAgreementViolation(t *testing.T) {
	h, _, cfg := base(t)
	a := msg(1, 0, 1)
	h.AddSubmit(100, a)
	h.AddDelivery(0, del(a, 5, 0))
	h.AddDelivery(1, del(a, 6, 0)) // disagreeing GTS (Invariant 3b)
	found := false
	for _, err := range h.Check(cfg) {
		if containsStr(err.Error(), "3b") {
			found = true
		}
	}
	if !found {
		t.Fatal("GTS disagreement not flagged")
	}
}

func TestGTSUniquenessAndMonotonicityViolations(t *testing.T) {
	h, _, cfg := base(t)
	a, b := msg(1, 1), msg(2, 1)
	h.AddSubmit(100, a)
	h.AddSubmit(100, b)
	h.AddDelivery(1, del(a, 6, 0))
	h.AddDelivery(1, del(b, 6, 0)) // same GTS (Invariant 4) + non-increasing
	errs := h.Check(cfg)
	var hasUnique, hasMonotone bool
	for _, err := range errs {
		s := err.Error()
		if containsStr(s, "Invariant 4") {
			hasUnique = true
		}
		if containsStr(s, "not above previous") {
			hasMonotone = true
		}
	}
	if !hasUnique || !hasMonotone {
		t.Fatalf("missing GTS violations (unique=%v monotone=%v): %v", hasUnique, hasMonotone, errs)
	}
}

func TestTerminationViolation(t *testing.T) {
	h, _, cfg := base(t)
	a := msg(1, 0, 1)
	h.AddSubmit(100, a)
	h.AddDelivery(0, del(a, 1, 0)) // p1 (group 1) never delivers
	found := false
	for _, err := range h.Check(cfg) {
		if containsStr(err.Error(), "termination") {
			found = true
		}
	}
	if !found {
		t.Fatal("missing delivery not flagged at quiescence")
	}
}

func TestTerminationExcusesCrashed(t *testing.T) {
	h, _, cfg := base(t)
	cfg.Crashed = map[mcast.ProcessID]bool{1: true}
	a := msg(1, 0, 1)
	h.AddSubmit(100, a)
	h.AddDelivery(0, del(a, 1, 0))
	if errs := h.Check(cfg); len(errs) != 0 {
		t.Fatalf("crashed process's missing delivery flagged: %v", errs)
	}
}

func TestTerminationRequiresCorrectClientMessages(t *testing.T) {
	h, _, cfg := base(t)
	a := msg(1, 0)
	h.AddSubmit(100, a) // correct client, never delivered anywhere
	found := false
	for _, err := range h.Check(cfg) {
		if containsStr(err.Error(), "termination") {
			found = true
		}
	}
	if !found {
		t.Fatal("undelivered message from correct client not flagged")
	}
	// If the client crashed, the undelivered message is excused.
	h2 := check.NewHistory()
	h2.AddSubmit(100, a)
	cfg2 := cfg
	cfg2.Crashed = map[mcast.ProcessID]bool{100: true}
	if errs := h2.Check(cfg2); len(errs) != 0 {
		t.Fatalf("crashed client's message flagged: %v", errs)
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && searchStr(haystack, needle)
}

func searchStr(h, n string) bool {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return true
		}
	}
	return false
}

// pmsg is msg with a payload, for conflict-relation histories.
func pmsg(seq uint32, payload string, dest ...mcast.GroupID) mcast.AppMsg {
	m := msg(seq, dest...)
	m.Payload = []byte(payload)
	return m
}

// firstByteConflict: payloads conflict iff their first bytes match.
func firstByteConflict(a, b mcast.AppMsg) bool {
	return len(a.Payload) > 0 && len(b.Payload) > 0 && a.Payload[0] == b.Payload[0]
}

// TestPartialOrderAllowsCommutingDisagreement: with a conflict relation,
// two processes delivering a *commuting* pair in opposite orders (and out
// of stamp order locally) is legal — neither Ordering nor the per-process
// GTS check may flag it.
func TestPartialOrderAllowsCommutingDisagreement(t *testing.T) {
	h, _, cfg := base(t)
	cfg.Conflicts = firstByteConflict
	a, b := pmsg(1, "a-put", 0, 1), pmsg(2, "b-put", 0, 1)
	h.AddSubmit(100, a)
	h.AddSubmit(100, b)
	h.AddDelivery(0, del(a, 1, 0))
	h.AddDelivery(0, del(b, 2, 0))
	h.AddDelivery(1, del(b, 2, 0)) // opposite order at p1: commuting, fine
	h.AddDelivery(1, del(a, 1, 0))
	if errs := h.Check(cfg); len(errs) != 0 {
		t.Fatalf("commuting disagreement flagged: %v", errs)
	}
}

// TestPartialOrderFlagsConflictingDisagreement: the same inverted pair with
// payloads that conflict must be flagged by both the Ordering graph and the
// per-process stamp check.
func TestPartialOrderFlagsConflictingDisagreement(t *testing.T) {
	h, _, cfg := base(t)
	cfg.Conflicts = firstByteConflict
	a, b := pmsg(1, "a-put", 0, 1), pmsg(2, "a-del", 0, 1)
	h.AddSubmit(100, a)
	h.AddSubmit(100, b)
	h.AddDelivery(0, del(a, 1, 0))
	h.AddDelivery(0, del(b, 2, 0))
	h.AddDelivery(1, del(b, 2, 0))
	h.AddDelivery(1, del(a, 1, 0))
	var hasOrdering, hasStamp bool
	for _, err := range h.Check(cfg) {
		if containsStr(err.Error(), "ordering") {
			hasOrdering = true
		}
		if containsStr(err.Error(), "stamp order inverted") {
			hasStamp = true
		}
	}
	if !hasOrdering || !hasStamp {
		t.Fatalf("conflicting disagreement missed (ordering=%v stamp=%v)", hasOrdering, hasStamp)
	}
}

// TestPartialOrderKeepsStampInvariants: stamp agreement and uniqueness are
// unchanged by the relaxation.
func TestPartialOrderKeepsStampInvariants(t *testing.T) {
	h, _, cfg := base(t)
	cfg.Conflicts = firstByteConflict
	a, b := pmsg(1, "a", 0, 1), pmsg(2, "b", 0, 1)
	h.AddSubmit(100, a)
	h.AddSubmit(100, b)
	h.AddDelivery(0, del(a, 5, 0))
	h.AddDelivery(1, del(a, 6, 0)) // Invariant 3b
	h.AddDelivery(0, del(b, 5, 0)) // Invariant 4 (same stamp as a at p0)
	var has3b, has4 bool
	for _, err := range h.Check(cfg) {
		if containsStr(err.Error(), "3b") {
			has3b = true
		}
		if containsStr(err.Error(), "Invariant 4") {
			has4 = true
		}
	}
	if !has3b || !has4 {
		t.Fatalf("stamp invariants missed (3b=%v 4=%v)", has3b, has4)
	}
}

package wbcast_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"wbcast"
)

func TestConfigValidation(t *testing.T) {
	if _, err := wbcast.New(wbcast.Config{}); err == nil {
		t.Error("zero Groups accepted")
	}
	if _, err := wbcast.New(wbcast.Config{Groups: 1, Replicas: 2}); err == nil {
		t.Error("even Replicas accepted")
	}
	// Validate is the same check construction applies — including the
	// per-transport ones.
	bad := wbcast.Config{
		Groups:    1,
		Latency:   wbcast.LAN(),
		Transport: wbcast.TCP("", map[wbcast.ProcessID]string{}),
	}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted Latency on a TCP transport")
	}
	if _, err := wbcast.New(bad); err == nil {
		t.Error("New accepted Latency on a TCP transport")
	}
	if err := (wbcast.Config{Groups: 2}).Validate(); err != nil {
		t.Errorf("Validate rejected a valid config: %v", err)
	}
}

func TestQuickstartFlow(t *testing.T) {
	var mu sync.Mutex
	delivered := map[wbcast.ProcessID][]wbcast.Delivery{}
	c, err := wbcast.New(wbcast.Config{
		Groups: 2,
		OnDeliver: func(p wbcast.ProcessID, d wbcast.Delivery) {
			mu.Lock()
			delivered[p] = append(delivered[p], d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cl.Multicast(ctx, []byte("to-both"), 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Multicast(ctx, []byte("to-g0"), 0); err != nil {
		t.Fatal(err)
	}
	// The synchronous Multicast already guarantees first delivery per
	// group; give followers a beat to catch up.
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for _, p := range c.GroupMembers(0) {
		if len(delivered[p]) != 2 {
			t.Errorf("group-0 replica %d delivered %d messages, want 2", p, len(delivered[p]))
		}
	}
	for _, p := range c.GroupMembers(1) {
		if len(delivered[p]) != 1 {
			t.Errorf("group-1 replica %d delivered %d messages, want 1", p, len(delivered[p]))
		}
	}
}

func TestMulticastValidation(t *testing.T) {
	c, err := wbcast.New(wbcast.Config{Groups: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cl.Multicast(ctx, []byte("x")); err == nil {
		t.Error("empty destination accepted")
	}
	if _, err := cl.Multicast(ctx, []byte("x"), 7); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	c, err := wbcast.New(wbcast.Config{Groups: 1})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	// Crash the whole group so the multicast cannot complete.
	for _, p := range c.GroupMembers(0) {
		c.CrashReplica(p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := cl.Multicast(ctx, []byte("x"), 0); err != context.DeadlineExceeded {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
	c.Close()
}

// TestAllProtocolsEndToEnd drives every protocol through the public API.
func TestAllProtocolsEndToEnd(t *testing.T) {
	for _, proto := range []wbcast.Protocol{wbcast.WhiteBox, wbcast.FastCast, wbcast.FTSkeen} {
		t.Run(proto.String(), func(t *testing.T) {
			var mu sync.Mutex
			count := 0
			c, err := wbcast.New(wbcast.Config{
				Protocol: proto,
				Groups:   3,
				OnDeliver: func(p wbcast.ProcessID, d wbcast.Delivery) {
					mu.Lock()
					count++
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cl, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			for i := 0; i < 10; i++ {
				dest := []wbcast.GroupID{wbcast.GroupID(i % 3), wbcast.GroupID((i + 1) % 3)}
				if _, err := cl.Multicast(ctx, []byte(fmt.Sprintf("m%d", i)), dest...); err != nil {
					t.Fatalf("multicast %d: %v", i, err)
				}
			}
			time.Sleep(100 * time.Millisecond)
			mu.Lock()
			defer mu.Unlock()
			if count != 10*2*3 { // 10 messages × 2 groups × 3 replicas
				t.Errorf("deliveries = %d, want %d", count, 60)
			}
		})
	}
}

// TestFailoverThroughPublicAPI: crash a group leader mid-stream; the
// cluster must keep accepting multicasts.
func TestFailoverThroughPublicAPI(t *testing.T) {
	c, err := wbcast.New(wbcast.Config{Groups: 2, Delta: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := cl.Multicast(ctx, []byte("before"), 0, 1); err != nil {
		t.Fatal(err)
	}
	c.CrashReplica(c.InitialLeader(0))
	if _, err := cl.Multicast(ctx, []byte("after"), 0, 1); err != nil {
		t.Fatalf("multicast after leader crash: %v", err)
	}
}

// TestBatchingPublicAPI drives batched multicasts through the public API
// on the live runtime: concurrent submitters, payload-level deliveries,
// identical (GTS, Sub) total order at every replica.
func TestBatchingPublicAPI(t *testing.T) {
	const (
		submitters = 4
		perWorker  = 25
	)
	var mu sync.Mutex
	delivered := map[wbcast.ProcessID][]wbcast.Delivery{}
	c, err := wbcast.New(wbcast.Config{
		Groups: 2,
		Batching: &wbcast.Batching{
			MaxBatchMsgs:  8,
			MaxBatchDelay: time.Millisecond,
		},
		OnDeliver: func(p wbcast.ProcessID, d wbcast.Delivery) {
			mu.Lock()
			delivered[p] = append(delivered[p], d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for j := 0; j < perWorker; j++ {
				if _, err := cl.Multicast(ctx, []byte(fmt.Sprintf("w%d-%d", w, j)), 0, 1); err != nil {
					errs <- fmt.Errorf("worker %d multicast %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // followers catch up
	mu.Lock()
	defer mu.Unlock()
	total := submitters * perWorker
	var reference []string
	for _, p := range append(c.GroupMembers(0), c.GroupMembers(1)...) {
		ds := delivered[p]
		if len(ds) != total {
			t.Fatalf("replica %d delivered %d payloads, want %d", p, len(ds), total)
		}
		var seq []string
		for i, d := range ds {
			if i > 0 && !ds[i-1].Before(d) {
				t.Errorf("replica %d: delivery %d not above its predecessor in (GTS, Sub)", p, i)
			}
			seq = append(seq, string(d.Msg.Payload))
		}
		// All replicas deliver to both groups here, so every replica must
		// observe the identical per-payload total order.
		if reference == nil {
			reference = seq
		} else {
			for i := range reference {
				if seq[i] != reference[i] {
					t.Fatalf("replica %d diverges from total order at %d: %q vs %q", p, i, seq[i], reference[i])
				}
			}
		}
	}
}

// TestConcurrentClients: multiple clients hammer the cluster concurrently.
func TestConcurrentClients(t *testing.T) {
	c, err := wbcast.New(wbcast.Config{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 4*20)
	for i := 0; i < 4; i++ {
		cl, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *wbcast.Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for j := 0; j < 20; j++ {
				if _, err := cl.Multicast(ctx, []byte("x"), 0, 1); err != nil {
					errs <- err
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Package wbcast is a genuine atomic multicast library for Go, implementing
// the white-box atomic multicast protocol of Gotsman, Lefort and Chockler
// (DSN 2019) together with the two baselines the paper compares against
// (fault-tolerant Skeen and FastCast).
//
// Atomic multicast delivers messages to multiple groups of replicas in one
// global total order: each group receives the projection of that order onto
// the messages addressed to it. The white-box protocol delivers in 3 network
// delays at group leaders in the collision-free case and at most 5 under
// contention, tolerating f crash failures per group of 2f+1 replicas.
//
// Quickstart:
//
//	cluster, err := wbcast.New(wbcast.Config{
//		Groups:   2,
//		Replicas: 3,
//		OnDeliver: func(p wbcast.ProcessID, d wbcast.Delivery) {
//			fmt.Printf("replica %d delivered %q at %v\n", p, d.Msg.Payload, d.GTS)
//		},
//	})
//	defer cluster.Close()
//	client, err := cluster.NewClient()
//	id, err := client.Multicast(ctx, []byte("hello"), 0, 1)
//
// Deliveries at each replica happen in increasing global-timestamp (GTS)
// order; the GTS exposes the system-wide total order to applications such
// as replicated state machines and shared logs.
//
// # Batching
//
// For throughput-bound workloads, Config.Batching aggregates the payloads
// of each client into protocol-level batches per destination set,
// amortising the fixed per-message ordering cost (timestamp proposals, ACK
// quorums, a delivery-queue pass) over up to MaxBatchMsgs payloads:
//
//	cluster, err := wbcast.New(wbcast.Config{
//		Groups: 2,
//		Batching: &wbcast.Batching{
//			MaxBatchMsgs:  64,                     // flush at 64 payloads
//			MaxBatchBytes: 64 << 10,               // ... or at 64 KiB
//			MaxBatchDelay: 500 * time.Microsecond, // ... or after 500µs
//			Window:        4,                      // batches in flight per dest set
//		},
//		OnDeliver: func(p wbcast.ProcessID, d wbcast.Delivery) {
//			// One callback per payload: payloads of a batch share d.GTS
//			// and are sub-ordered by d.Sub.
//		},
//	})
//
// Batching is transparent to applications: deliveries arrive per payload,
// with the original message IDs, in the total order (GTS, Sub). Payloads of
// one batch share a GTS and are sub-sequenced by Delivery.Sub in submission
// order. Client.Multicast still blocks until the payload's batch has been
// delivered by every destination group — enable batching together with
// concurrent (or MulticastAsync-pipelined) submitters, since a lone
// payload only ships when MaxBatchDelay expires.
package wbcast

import (
	"fmt"
	"time"

	"wbcast/internal/batch"
	"wbcast/internal/core"
	"wbcast/internal/fastcast"
	"wbcast/internal/ftskeen"
	"wbcast/internal/live"
	"wbcast/internal/mcast"
	"wbcast/internal/node"
)

// Re-exported core types. See the internal/mcast documentation for details.
type (
	// ProcessID identifies a replica or client process.
	ProcessID = mcast.ProcessID
	// GroupID identifies a replica group.
	GroupID = mcast.GroupID
	// MsgID uniquely identifies a multicast message.
	MsgID = mcast.MsgID
	// Timestamp is a multicast timestamp; deliveries are ordered by it.
	Timestamp = mcast.Timestamp
	// GroupSet is a sorted set of destination groups.
	GroupSet = mcast.GroupSet
	// AppMsg is an application message with its destinations.
	AppMsg = mcast.AppMsg
	// Delivery is a delivered message with its global timestamp.
	Delivery = mcast.Delivery
)

// NewGroupSet builds a normalised destination set.
func NewGroupSet(groups ...GroupID) GroupSet { return mcast.NewGroupSet(groups...) }

// Protocol selects the multicast implementation.
type Protocol int

// Available protocols.
const (
	// WhiteBox is the paper's protocol: 3δ collision-free, 5δ failure-free.
	WhiteBox Protocol = iota + 1
	// FastCast is the baseline of Coelho et al.: 4δ / 8δ.
	FastCast
	// FTSkeen is the classical black-box baseline: 6δ / 12δ.
	FTSkeen
)

func (p Protocol) String() string {
	switch p {
	case WhiteBox:
		return "wbcast"
	case FastCast:
		return "fastcast"
	case FTSkeen:
		return "ftskeen"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Batching configures client-side payload batching and pipelining
// (internal/batch). Zero-valued fields take sensible defaults (64
// payloads, 64 KiB, 1ms, window 4).
type Batching struct {
	// MaxBatchMsgs flushes a batch once it holds this many payloads.
	MaxBatchMsgs int
	// MaxBatchBytes flushes a batch once its payloads total this many
	// bytes.
	MaxBatchBytes int
	// MaxBatchDelay bounds how long the first payload of a batch may wait
	// before the batch is flushed regardless of size — the batching
	// latency tax.
	MaxBatchDelay time.Duration
	// Window is the maximum number of batches in flight per destination
	// set; further payloads accumulate until a completion frees a slot.
	Window int
}

func (b *Batching) options() batch.Options {
	return batch.Options{
		MaxMsgs:  b.MaxBatchMsgs,
		MaxBytes: b.MaxBatchBytes,
		MaxDelay: b.MaxBatchDelay,
		Window:   b.Window,
	}
}

// Config parametrises a Cluster.
type Config struct {
	// Protocol defaults to WhiteBox.
	Protocol Protocol
	// Groups is the number of replica groups (required, ≥ 1).
	Groups int
	// Replicas is the group size 2f+1 (default 3).
	Replicas int
	// Delta is the expected one-way network delay, from which protocol
	// timeouts (retries, heartbeats, suspicion) are derived. Default 2 ms —
	// appropriate for in-process deployments.
	Delta time.Duration
	// Latency optionally injects artificial one-way delays between
	// processes (see internal/live profiles); nil means none.
	Latency func(from, to ProcessID) time.Duration
	// OnDeliver receives every delivery at every replica. It is invoked
	// from replica goroutines and must not block for long.
	OnDeliver func(p ProcessID, d Delivery)
	// DisableGC turns off garbage collection of delivered messages
	// (WhiteBox only; the baselines retain delivered state regardless).
	DisableGC bool
	// Batching, when non-nil, batches each client's payloads into
	// protocol-level multicasts per destination set (see the package
	// documentation). Nil disables batching: every payload is ordered
	// individually.
	Batching *Batching
}

// Cluster is an in-process atomic multicast deployment: Groups × Replicas
// replica processes plus any number of clients.
type Cluster struct {
	cfg Config
	top *mcast.Topology
	net *live.Network

	nextClient ProcessID
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Groups < 1 {
		return nil, fmt.Errorf("wbcast: Config.Groups must be ≥ 1")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if cfg.Replicas%2 == 0 {
		return nil, fmt.Errorf("wbcast: Config.Replicas must be odd (2f+1)")
	}
	if cfg.Protocol == 0 {
		cfg.Protocol = WhiteBox
	}
	if cfg.Delta == 0 {
		cfg.Delta = 2 * time.Millisecond
	}
	top := mcast.UniformTopology(cfg.Groups, cfg.Replicas)
	net := live.New(live.Config{
		Latency:   cfg.Latency,
		OnDeliver: cfg.OnDeliver,
	})
	c := &Cluster{cfg: cfg, top: top, net: net, nextClient: ProcessID(top.NumReplicas())}
	for pid := ProcessID(0); int(pid) < top.NumReplicas(); pid++ {
		h, err := c.newReplica(pid)
		if err != nil {
			return nil, err
		}
		if err := net.Add(h); err != nil {
			return nil, err
		}
	}
	if err := net.Start(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Cluster) newReplica(pid ProcessID) (node.Handler, error) {
	d := c.cfg.Delta
	switch c.cfg.Protocol {
	case WhiteBox:
		rc := core.DefaultConfig(pid, c.top, d)
		if c.cfg.DisableGC {
			rc.GCInterval = 0
		}
		return core.NewReplica(rc)
	case FastCast:
		return fastcast.New(fastcast.Config{
			PID: pid, Top: c.top,
			RetryInterval:     20 * d,
			HeartbeatInterval: 10 * d,
			SuspectTimeout:    40 * d,
		})
	case FTSkeen:
		return ftskeen.New(ftskeen.Config{
			PID: pid, Top: c.top,
			RetryInterval:     20 * d,
			HeartbeatInterval: 10 * d,
			SuspectTimeout:    40 * d,
		})
	default:
		return nil, fmt.Errorf("wbcast: unknown protocol %v", c.cfg.Protocol)
	}
}

// Close shuts the cluster down and joins all its goroutines.
func (c *Cluster) Close() { c.net.Close() }

// NumGroups returns the number of groups.
func (c *Cluster) NumGroups() int { return c.top.NumGroups() }

// GroupMembers returns the replica IDs of group g.
func (c *Cluster) GroupMembers(g GroupID) []ProcessID {
	out := make([]ProcessID, len(c.top.Members(g)))
	copy(out, c.top.Members(g))
	return out
}

// AllGroups returns the set of all groups.
func (c *Cluster) AllGroups() GroupSet { return c.top.AllGroups() }

// CrashReplica injects a crash-stop failure: the replica stops processing.
// The cluster tolerates up to (Replicas-1)/2 crashes per group.
func (c *Cluster) CrashReplica(pid ProcessID) { c.net.Crash(pid) }

// InitialLeader returns the process that leads group g at startup.
func (c *Cluster) InitialLeader(g GroupID) ProcessID { return c.top.InitialLeader(g) }

// Package wbcast is a genuine atomic multicast library for Go, implementing
// the white-box atomic multicast protocol of Gotsman, Lefort and Chockler
// (DSN 2019) together with the two baselines the paper compares against
// (fault-tolerant Skeen and FastCast).
//
// Atomic multicast delivers messages to multiple groups of replicas in one
// global total order: each group receives the projection of that order onto
// the messages addressed to it. The white-box protocol delivers in 3 network
// delays at group leaders in the collision-free case and at most 5 under
// contention, tolerating f crash failures per group of 2f+1 replicas.
//
// # Transports
//
// The same protocol state machines run on any of three transports, selected
// by Config.Transport: InProcess (goroutines and in-memory links — the
// default), Simulated (a deterministic discrete-event simulator for test
// authors) and TCP (real sockets, for distributed deployments). A Cluster
// hosts the whole topology on one transport; a distributed deployment
// instead starts its local processes individually with NewReplica and
// NewClient on a TCP transport — one process per host:
//
//	// Host 3 of a 2-group × 3-replica cluster (replica 3, group 1):
//	tr := wbcast.TCP("0.0.0.0:7003", peers) // peers: ProcessID → address, same on every host
//	rep, err := wbcast.NewReplica(wbcast.Config{Groups: 2, Replicas: 3, Transport: tr}, 3)
//	defer rep.Close()
//
// # Quickstart
//
//	cluster, err := wbcast.New(wbcast.Config{Groups: 2})
//	defer cluster.Close()
//	sub := cluster.Replica(0).Deliveries()
//	client, err := cluster.NewClient()
//	id, err := client.Multicast(ctx, []byte("hello"), 0, 1)
//	d := <-sub.C() // replica 0's deliveries, in increasing (GTS, Sub) order
//
// Deliveries at each replica happen in increasing global-timestamp (GTS)
// order; the GTS exposes the system-wide total order to applications such
// as replicated state machines and shared logs. Deliveries are consumed
// through pull-based subscriptions (Replica.Deliveries, with configurable
// buffering and drop policy — see DeliveryPolicy); Config.OnDeliver remains
// as a push-style adapter over a lossless subscription.
//
// # Batching
//
// For throughput-bound workloads, Config.Batching aggregates the payloads
// of each client into protocol-level batches per destination set,
// amortising the fixed per-message ordering cost (timestamp proposals, ACK
// quorums, a delivery-queue pass) over up to MaxBatchMsgs payloads:
//
//	cluster, err := wbcast.New(wbcast.Config{
//		Groups: 2,
//		Batching: &wbcast.Batching{
//			MaxBatchMsgs:  64,                     // flush at 64 payloads
//			MaxBatchBytes: 64 << 10,               // ... or at 64 KiB
//			MaxBatchDelay: 500 * time.Microsecond, // ... or after 500µs
//			Window:        4,                      // batches in flight per dest set
//		},
//	})
//
// Batching is transparent to applications: deliveries arrive per payload,
// with the original message IDs, in the total order (GTS, Sub). Payloads of
// one batch share a GTS and are sub-sequenced by Delivery.Sub in submission
// order. Client.Multicast still blocks until the payload's batch has been
// delivered by every destination group — enable batching together with
// concurrent (or MulticastAsync-pipelined) submitters, since a lone
// payload only ships when MaxBatchDelay expires.
package wbcast

import (
	"fmt"
	"time"

	"wbcast/internal/batch"
	"wbcast/internal/core"
	"wbcast/internal/fastcast"
	"wbcast/internal/ftskeen"
	"wbcast/internal/live"
	"wbcast/internal/mcast"
	"wbcast/internal/node"
	"wbcast/internal/obs"
	"wbcast/internal/skeen"
	"wbcast/internal/wal"
)

// Re-exported core types. See the internal/mcast documentation for details.
type (
	// ProcessID identifies a replica or client process.
	ProcessID = mcast.ProcessID
	// GroupID identifies a replica group.
	GroupID = mcast.GroupID
	// MsgID uniquely identifies a multicast message.
	MsgID = mcast.MsgID
	// Timestamp is a multicast timestamp; deliveries are ordered by it.
	Timestamp = mcast.Timestamp
	// GroupSet is a sorted set of destination groups.
	GroupSet = mcast.GroupSet
	// AppMsg is an application message with its destinations.
	AppMsg = mcast.AppMsg
	// Delivery is a delivered message with its global timestamp.
	Delivery = mcast.Delivery
)

// NoProcess marks the absence of a process where it must be
// distinguishable from process 0.
const NoProcess = mcast.NoProcess

// NewGroupSet builds a normalised destination set.
func NewGroupSet(groups ...GroupID) GroupSet { return mcast.NewGroupSet(groups...) }

// Protocol selects the multicast implementation.
type Protocol int

// Available protocols.
const (
	// WhiteBox is the paper's protocol: 3δ collision-free, 5δ failure-free.
	WhiteBox Protocol = iota + 1
	// FastCast is the baseline of Coelho et al.: 4δ / 8δ.
	FastCast
	// FTSkeen is the classical black-box baseline: 6δ / 12δ.
	FTSkeen
	// Skeen is the original non-fault-tolerant protocol of Skeen (4δ): it
	// assumes reliable processes, requires singleton groups (Replicas must
	// be 1) and ignores Config.Storage. It is the latency floor the paper's
	// baselines are measured against; production deployments use the
	// fault-tolerant protocols above.
	Skeen
	// Genmcast is the conflict-aware generalisation of WhiteBox (generic
	// multicast in the sense of Bolina et al.): it runs the same timestamp
	// and ballot machinery but only orders messages that conflict under
	// Config.Conflicts — mutually commuting messages are delivered as soon
	// as they commit, without waiting behind smaller timestamps. Deliveries
	// still carry the global timestamp, and any two conflicting messages
	// are delivered in GTS order at every common destination; the relative
	// order of commuting messages may differ between replicas. GC of
	// delivered messages is disabled (as for the FastCast and FTSkeen
	// baselines).
	Genmcast
)

// String returns the protocol's canonical name, accepted by
// ParseProtocol.
func (p Protocol) String() string {
	switch p {
	case WhiteBox:
		return "wbcast"
	case FastCast:
		return "fastcast"
	case FTSkeen:
		return "ftskeen"
	case Skeen:
		return "skeen"
	case Genmcast:
		return "genmcast"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ParseProtocol resolves a protocol name — "wbcast", "fastcast", "ftskeen",
// "skeen" or "genmcast" — to its Protocol value. Command-line tools use it
// so the accepted names match Protocol.String.
func ParseProtocol(name string) (Protocol, error) {
	switch name {
	case "wbcast":
		return WhiteBox, nil
	case "fastcast":
		return FastCast, nil
	case "ftskeen":
		return FTSkeen, nil
	case "skeen":
		return Skeen, nil
	case "genmcast":
		return Genmcast, nil
	default:
		return 0, fmt.Errorf("wbcast: unknown protocol %q (want wbcast, fastcast, ftskeen, skeen or genmcast)", name)
	}
}

// ConflictRelation reports whether two application payloads conflict —
// whether their delivery order is observable by the application. Under the
// Genmcast protocol, only conflicting messages are mutually ordered;
// non-conflicting (commuting) messages may be delivered in different
// relative orders at different replicas.
//
// The relation must be symmetric and deterministic, and may only ever be
// conservative: reporting a conflict where none exists costs latency, never
// safety. The zero relation (nil) treats every pair as conflicting, which
// makes Genmcast deliver exactly like WhiteBox.
type ConflictRelation = mcast.ConflictRelation

// Batching configures client-side payload batching and pipelining
// (internal/batch). Zero-valued fields take sensible defaults (64
// payloads, 64 KiB, 1ms, window 4).
type Batching struct {
	// MaxBatchMsgs flushes a batch once it holds this many payloads.
	MaxBatchMsgs int
	// MaxBatchBytes flushes a batch once its payloads total this many
	// bytes.
	MaxBatchBytes int
	// MaxBatchDelay bounds how long the first payload of a batch may wait
	// before the batch is flushed regardless of size — the batching
	// latency tax.
	MaxBatchDelay time.Duration
	// Window is the maximum number of batches in flight per destination
	// set; further payloads accumulate until a completion frees a slot.
	Window int
}

func (b *Batching) options() batch.Options {
	return batch.Options{
		MaxMsgs:  b.MaxBatchMsgs,
		MaxBytes: b.MaxBatchBytes,
		MaxDelay: b.MaxBatchDelay,
		Window:   b.Window,
	}
}

// Observability configures the deployment's metrics and tracing
// (internal/obs). Metrics are on by default — every process maintains
// atomic counters, gauges and per-stage latency histograms, readable via
// Replica.Metrics / Client.Metrics and scrapeable through ServeMetrics.
// Message-lifecycle tracing is off by default and enabled by TraceSample.
type Observability struct {
	// Disabled turns the whole layer off: no registries, no handles, no
	// tracer. The hot paths then pay one nil-check branch per
	// instrumentation point — the baseline the overhead benchmark
	// (BENCH_PR6.json) compares against.
	Disabled bool
	// TraceSample enables message-lifecycle tracing: every TraceSample-th
	// message of each sender (by client-local sequence number — a
	// deterministic rule, so two runs of the same seeded simulation trace
	// the same messages) has its stage events recorded. 1 traces every
	// message; 0 disables tracing. Rare system events (step-downs,
	// elections, injected faults) are recorded regardless of sampling.
	TraceSample int
	// TraceBuffer bounds the number of retained trace events (default
	// 65536); overflow increments wbcast_trace_dropped_total instead of
	// growing without bound.
	TraceBuffer int
}

// MetricsSnapshot is a point-in-time copy of a process's metrics, keyed by
// metric name (including the label set, e.g.
// `wbcast_stage_latency_seconds{stage="commit"}`). See docs/OBSERVABILITY.md
// for the catalog.
type MetricsSnapshot = obs.Snapshot

// LatencyStats summarises a latency histogram: count, sum, max and the
// p50/p95/p99 quantiles (upper bucket bounds of a log₂ histogram), plus the
// raw bucket counts so snapshots merge exactly.
type LatencyStats = obs.LatencyStats

// TraceEvent is one timestamped record of a message-lifecycle trace: a
// stage transition of a sampled message, a recovery event, or an injected
// fault.
type TraceEvent = obs.Event

// Metric and stage names used when reading MetricsSnapshot maps from
// application code; the full catalog is in docs/OBSERVABILITY.md.
const (
	// MetricStageLatency is the per-stage latency histogram family,
	// labelled {stage="propose|accept|commit|deliver"}.
	MetricStageLatency = obs.MetricStageLatency
	// MetricClientE2E is the client submit-to-complete latency histogram.
	MetricClientE2E = obs.MetricClientE2E
	// MetricDeliveries counts protocol-level deliveries at a replica.
	MetricDeliveries = obs.MetricDeliveries
	// MetricKVOps counts kv client operations, labelled
	// {op="get|put|delete|txn"}.
	MetricKVOps = obs.MetricKVOps
	// MetricKVOpLatency is the kv client operation latency histogram,
	// labelled {dests="single|multi"}.
	MetricKVOpLatency = obs.MetricKVOpLatency
	// MetricKVApplied counts operations applied by a kv shard engine.
	MetricKVApplied = obs.MetricKVApplied
	// MetricKVReplayed counts operations a kv shard engine re-applied at
	// recovery.
	MetricKVReplayed = obs.MetricKVReplayed
)

// MergeMetrics folds many per-process snapshots into one: counters and
// gauges sum, histograms merge bucket-wise so the percentiles of the union
// are exact to bucket resolution.
func MergeMetrics(snaps ...MetricsSnapshot) MetricsSnapshot {
	return obs.MergeSnapshots(snaps...)
}

// FormatTimeline renders trace events as one canonical line each, in
// recording order. On the simulated transport two runs of the same seeded
// schedule render byte-identical timelines.
func FormatTimeline(events []TraceEvent) string { return obs.FormatTimeline(events) }

// FormatMessageTimelines renders a per-message stage timeline (events
// grouped by message, annotated with deltas from the message's first
// event), with system and fault events in a trailing section. This is the
// wbcast-sim -trace output format.
func FormatMessageTimelines(events []TraceEvent) string {
	return obs.FormatMessageTimelines(events)
}

// Config parametrises a deployment: the topology and protocol options
// shared by every transport, plus the transport itself. The zero value of
// every field except Groups is usable; construction validates the rest
// (see Validate).
type Config struct {
	// Protocol defaults to WhiteBox.
	Protocol Protocol
	// Groups is the number of replica groups (required, ≥ 1).
	Groups int
	// Replicas is the group size 2f+1 (default 3).
	Replicas int
	// Delta is the expected one-way network delay, from which protocol
	// timeouts (retries, heartbeats, suspicion) and the simulated
	// transport's default link latency are derived. Default 2 ms —
	// appropriate for in-process deployments; distributed deployments
	// should set it to their network's delay.
	Delta time.Duration
	// Transport hosts the deployment's processes; nil means InProcess().
	// A Transport value is single-use: one deployment per value.
	Transport Transport
	// Latency optionally injects artificial one-way delays between
	// processes on the InProcess and Simulated transports (see LAN and
	// WAN for the paper's testbed profiles). Setting it on a TCP
	// transport is a validation error — real networks have real latency.
	Latency func(from, to ProcessID) time.Duration
	// DeliveryBuffer is the capacity of delivery subscriptions created by
	// Replica.Deliveries (default 1024).
	DeliveryBuffer int
	// DeliveryPolicy decides what a full subscription does with further
	// deliveries (default Backpressure — lossless).
	DeliveryPolicy DeliveryPolicy
	// OnDeliver, when non-nil, receives every delivery at every replica of
	// the deployment. It is an adapter over a lossless subscription: a
	// per-replica goroutine invokes the callback in delivery order, off
	// the replica's critical path. Pull-based consumers use
	// Replica.Deliveries instead.
	OnDeliver func(p ProcessID, d Delivery)
	// Conflicts is the application's conflict relation, honoured by the
	// Genmcast protocol only (setting it with any other protocol is a
	// validation error). Nil treats every pair of payloads as conflicting.
	// Batched payloads are handled per payload: two batches conflict iff
	// any payload pair across them does. Services layered on a replica may
	// refine the relation later through Replica.SetConflictRelation (the kv
	// service installs its key-based relation automatically).
	Conflicts ConflictRelation
	// DisableGC turns off garbage collection of delivered messages
	// (WhiteBox only; the baselines retain delivered state regardless).
	DisableGC bool
	// AppGCHorizon gates garbage collection on an application durability
	// horizon (WhiteBox only): a delivered message's protocol record is
	// pruned only once the watermark conditions hold AND the application
	// has reported, via Replica.AdvanceGCHorizon, that its own durable
	// state covers the message's global timestamp — so GC can never
	// discard a record the app would still need replayed after a crash.
	// Nothing is pruned before the first AdvanceGCHorizon call; durable
	// applications (e.g. kv.AttachShard with Persist) raise the horizon
	// automatically. Supersedes the DisableGC footgun for durable apps.
	AppGCHorizon bool
	// Batching, when non-nil, batches each client's payloads into
	// protocol-level multicasts per destination set (see the package
	// documentation). Nil disables batching: every payload is ordered
	// individually.
	Batching *Batching
	// Storage, when non-nil, gives every locally hosted replica a durable
	// store: the factory is invoked once per replica at construction, the
	// store's Load recovers the replica's durable state (ballot promises,
	// accepted records, the delivery frontier), and from then on every
	// crash-surviving state transition is appended and synced before the
	// corresponding message leaves the replica. See DirStorage for
	// disk-backed stores and MemoryStorage for simulator-restart semantics
	// without disk I/O; docs/DURABILITY.md describes the design. Clients
	// have no durable state; the factory is not invoked for them. Nil means
	// no durability: replicas are volatile (the crash-stop model), and a
	// returning process rejoins empty through the NEW_STATE transfer.
	Storage func(pid ProcessID) (Storage, error)
	// Observability configures metrics and message-lifecycle tracing; nil
	// means the default (metrics on, tracing off).
	Observability *Observability
	// Logf, when non-nil, receives transport diagnostics (connection
	// errors, dropped frames) on transports that produce them (TCP).
	Logf func(format string, args ...any)

	// clock and tracer are the deployment-wide observability runtime,
	// assigned by Transport.open on every call so late-started processes
	// (NewReplica / NewClient with fresh Config values on a shared
	// transport) all share them. The clock is wall time since the transport
	// opened on live transports and virtual time on the simulator — which
	// is what makes simulated traces deterministic.
	clock  obs.Clock
	tracer *obs.Tracer
	// conflicts holds the effective (batch-envelope-aware) conflict
	// relation of a Genmcast deployment, created once by normalized() and
	// shared by every replica constructed from the normalized Config — so
	// Replica.SetConflictRelation rebinds the relation for the whole
	// deployment.
	conflicts *mcast.ConflictHolder
}

// obsOn reports whether the observability layer is enabled.
func (cfg Config) obsOn() bool {
	return cfg.Observability == nil || !cfg.Observability.Disabled
}

// newTracer builds the deployment tracer per cfg.Observability, or nil
// when tracing is off.
func (cfg Config) newTracer(clock obs.Clock) *obs.Tracer {
	o := cfg.Observability
	if o == nil || o.Disabled || o.TraceSample <= 0 {
		return nil
	}
	return obs.NewTracer(o.TraceSample, o.TraceBuffer, clock)
}

// Validate reports whether the configuration is well-formed: it is the
// check every constructor (New, NewReplica, NewClient) applies before
// building anything.
func (cfg Config) Validate() error {
	_, err := cfg.normalized()
	return err
}

// normalized validates cfg and fills in defaults, returning the effective
// configuration.
func (cfg Config) normalized() (Config, error) {
	if cfg.Groups < 1 {
		return cfg, fmt.Errorf("wbcast: Config.Groups must be ≥ 1")
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if cfg.Replicas < 0 || cfg.Replicas%2 == 0 {
		return cfg, fmt.Errorf("wbcast: Config.Replicas must be positive and odd (2f+1), got %d", cfg.Replicas)
	}
	if cfg.Protocol == 0 {
		cfg.Protocol = WhiteBox
	}
	switch cfg.Protocol {
	case WhiteBox, FastCast, FTSkeen:
	case Skeen:
		if cfg.Replicas != 1 {
			return cfg, fmt.Errorf("wbcast: the skeen protocol requires singleton groups (Replicas must be 1, got %d); use ftskeen for replicated groups", cfg.Replicas)
		}
	case Genmcast:
		if cfg.conflicts == nil {
			cfg.conflicts = mcast.NewConflictHolder(batch.Conflicts(cfg.Conflicts))
		}
	default:
		return cfg, fmt.Errorf("wbcast: unknown protocol %v", cfg.Protocol)
	}
	if cfg.Conflicts != nil && cfg.Protocol != Genmcast {
		return cfg, fmt.Errorf("wbcast: Config.Conflicts requires the genmcast protocol, got %v", cfg.Protocol)
	}
	if cfg.Delta == 0 {
		cfg.Delta = 2 * time.Millisecond
	}
	if cfg.Delta < 0 {
		return cfg, fmt.Errorf("wbcast: Config.Delta must be positive, got %v", cfg.Delta)
	}
	if cfg.DeliveryBuffer == 0 {
		cfg.DeliveryBuffer = 1024
	}
	if cfg.DeliveryBuffer < 0 {
		return cfg, fmt.Errorf("wbcast: Config.DeliveryBuffer must be positive, got %d", cfg.DeliveryBuffer)
	}
	switch cfg.DeliveryPolicy {
	case Backpressure, DropOldest, DropNewest:
	default:
		return cfg, fmt.Errorf("wbcast: unknown DeliveryPolicy %d", cfg.DeliveryPolicy)
	}
	if o := cfg.Observability; o != nil {
		if o.TraceSample < 0 {
			return cfg, fmt.Errorf("wbcast: Observability.TraceSample must be ≥ 0, got %d", o.TraceSample)
		}
		if o.TraceBuffer < 0 {
			return cfg, fmt.Errorf("wbcast: Observability.TraceBuffer must be ≥ 0, got %d", o.TraceBuffer)
		}
	}
	if cfg.Transport == nil {
		cfg.Transport = InProcess()
	}
	if cfg.Latency != nil {
		if _, isTCP := cfg.Transport.(*tcpTransport); isTCP {
			return cfg, fmt.Errorf("wbcast: Config.Latency applies to the InProcess and Simulated transports only; a TCP deployment has real network latency")
		}
	}
	return cfg, nil
}

// newProtocolHandler is the one construction point for protocol replicas,
// shared by Cluster, NewReplica and (through them) every command-line
// binary. Timing is derived from cfg.Delta; on the plain simulated
// transport the background timers (retries, heartbeats, failure detection,
// GC) are disabled so runs quiesce and replay identically — unless the
// transport runs in chaos mode (SimulatedOptions.Faults), where the
// timer-driven recovery machinery is exactly what is under test.
//
// rs, when non-nil, makes the replica durable: it emits persist effects
// for every crash-surviving state transition and replays rs — the folded
// state of its Storage — before joining (a cold store passes an Empty
// state, which replays to nothing).
func newProtocolHandler(cfg Config, top *mcast.Topology, pid ProcessID, po *obs.Proto, rs *wal.State) (node.Handler, error) {
	d := cfg.Delta
	det := !cfg.Transport.backgroundTimers()
	durable := rs != nil
	switch cfg.Protocol {
	case WhiteBox:
		rc := core.DefaultConfig(pid, top, d)
		rc.Obs = po
		rc.Durable = durable
		rc.Recovered = rs
		if cfg.DisableGC {
			rc.GCInterval = 0
		}
		rc.AppGCHorizon = cfg.AppGCHorizon
		if det {
			rc.RetryInterval, rc.HeartbeatInterval, rc.SuspectTimeout, rc.GCInterval = 0, 0, 0, 0
		}
		return core.NewReplica(rc)
	case FastCast:
		fc := fastcast.Config{
			PID: pid, Top: top,
			RetryInterval:     20 * d,
			HeartbeatInterval: 10 * d,
			SuspectTimeout:    40 * d,
			Obs:               po,
			Durable:           durable,
			Recovered:         rs,
		}
		if det {
			fc.RetryInterval, fc.HeartbeatInterval, fc.SuspectTimeout = 0, 0, 0
		}
		return fastcast.New(fc)
	case FTSkeen:
		fc := ftskeen.Config{
			PID: pid, Top: top,
			RetryInterval:     20 * d,
			HeartbeatInterval: 10 * d,
			SuspectTimeout:    40 * d,
			Obs:               po,
			Durable:           durable,
			Recovered:         rs,
		}
		if det {
			fc.RetryInterval, fc.HeartbeatInterval, fc.SuspectTimeout = 0, 0, 0
		}
		return ftskeen.New(fc)
	case Skeen:
		// Skeen's protocol assumes reliable processes: no timers, no
		// durable state — rs is ignored (Config.Storage still records the
		// app-level entries of services layered on the replica).
		return skeen.New(pid, top)
	case Genmcast:
		// The white-box machinery in conflict-aware delivery mode. GC is
		// forced off by the core (the release log and applied set reference
		// every delivered message).
		rc := core.DefaultConfig(pid, top, d)
		rc.Obs = po
		rc.Durable = durable
		rc.Recovered = rs
		rc.Conflicts = cfg.conflicts
		rc.AppGCHorizon = cfg.AppGCHorizon
		if det {
			rc.RetryInterval, rc.HeartbeatInterval, rc.SuspectTimeout, rc.GCInterval = 0, 0, 0, 0
		}
		return core.NewReplica(rc)
	default:
		return nil, fmt.Errorf("wbcast: unknown protocol %v", cfg.Protocol)
	}
}

// LAN returns the paper's LAN latency profile for Config.Latency: a
// uniform 50µs one-way delay on every link (the CloudLab testbed of §VI
// has ~0.1ms round trips).
func LAN() func(from, to ProcessID) time.Duration {
	return live.LAN()
}

// WAN returns the paper's WAN latency profile for Config.Latency on a
// uniform topology of groups×replicas: every group has one replica in each
// of the three data centres (Oregon, N. Virginia, England), with the §VI
// inter-datacentre round-trip matrix. Clients are spread round-robin over
// the data centres.
func WAN(groups, replicas int) func(from, to ProcessID) time.Duration {
	top := mcast.UniformTopology(groups, replicas)
	return live.WAN(live.PaperWANAssign(top))
}

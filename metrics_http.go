package wbcast

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"wbcast/internal/obs"
)

// MetricsSource is anything whose metrics a MetricsServer can expose:
// *Replica, *Client and *Cluster implement it. Sources with observability
// disabled contribute nothing.
type MetricsSource interface {
	obsRegistries() []*obs.Registry
}

func (r *Replica) obsRegistries() []*obs.Registry { return []*obs.Registry{r.reg} }
func (cl *Client) obsRegistries() []*obs.Registry { return []*obs.Registry{cl.reg} }

// appSource adapts registries owned by application layers built inside
// this module (package kv's shard engines and clients) into a
// MetricsSource; see NewAppSource.
type appSource struct{ regs []*obs.Registry }

func (s *appSource) obsRegistries() []*obs.Registry { return s.regs }

// NewAppSource bundles metric registries into a MetricsSource so
// application layers built in this module (package kv) can join a
// ServeMetrics endpoint next to the protocol's own metrics. The registry
// type lives in an internal package, so external modules use the sources
// those layers expose (e.g. kv.Service.MetricsSource) rather than calling
// this directly.
func NewAppSource(regs ...*obs.Registry) MetricsSource {
	kept := make([]*obs.Registry, 0, len(regs))
	for _, r := range regs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	return &appSource{regs: kept}
}

func (c *Cluster) obsRegistries() []*obs.Registry {
	regs := make([]*obs.Registry, 0, len(c.replicas))
	for _, r := range c.replicas {
		if r.reg != nil {
			regs = append(regs, r.reg)
		}
	}
	return regs
}

// MetricsServer is the HTTP observability endpoint started by ServeMetrics.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server

	mu      sync.Mutex
	sources []MetricsSource
}

// expvarOnce guards the process-wide expvar publication: expvar.Publish
// panics on duplicate names, and several MetricsServers may coexist in one
// process (tests, multi-replica hosts).
var (
	expvarOnce    sync.Once
	expvarMu      sync.Mutex
	expvarServers []*MetricsServer
)

// ServeMetrics starts an HTTP observability endpoint on addr serving
//
//   - /metrics — the sources' metrics in Prometheus text exposition format
//     (histograms as summaries, one family header across processes, each
//     sample labelled with its process ID);
//   - /debug/vars — the standard expvar endpoint, with the same metrics
//     published as one JSON document under "wbcast";
//   - /debug/pprof/ — the standard profiling handlers (CPU, heap, mutex,
//     goroutine, ...), so a running node can be profiled without rebuild.
//
// addr follows net.Listen conventions (e.g. "127.0.0.1:9100"; ":0" picks a
// free port — see Addr). Sources can be added later with AddSource; Close
// shuts the listener down. Used by wbcast-node and wbcast-bench via their
// -metrics-addr flag.
func ServeMetrics(addr string, sources ...MetricsSource) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wbcast: metrics listener: %w", err)
	}
	s := &MetricsServer{ln: ln, sources: sources}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, s.registries()...)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}

	expvarOnce.Do(func() {
		expvar.Publish("wbcast", expvar.Func(func() any {
			expvarMu.Lock()
			servers := append([]*MetricsServer(nil), expvarServers...)
			expvarMu.Unlock()
			var snaps []MetricsSnapshot
			for _, srv := range servers {
				for _, reg := range srv.registries() {
					snaps = append(snaps, reg.Snapshot())
				}
			}
			return MergeMetrics(snaps...)
		}))
	})
	expvarMu.Lock()
	expvarServers = append(expvarServers, s)
	expvarMu.Unlock()

	go s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// registries snapshots the current source list's registries.
func (s *MetricsServer) registries() []*obs.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var regs []*obs.Registry
	for _, src := range s.sources {
		regs = append(regs, src.obsRegistries()...)
	}
	return regs
}

// AddSource exposes another source's metrics on this endpoint (e.g. a
// client started after the server).
func (s *MetricsServer) AddSource(src MetricsSource) {
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.mu.Unlock()
}

// SetSources replaces the source list wholesale. wbcast-bench uses it to
// point one long-lived endpoint at each benchmark point's short-lived
// cluster in turn.
func (s *MetricsServer) SetSources(srcs ...MetricsSource) {
	s.mu.Lock()
	s.sources = srcs
	s.mu.Unlock()
}

// Addr returns the address the server is listening on (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the HTTP server and its listener.
func (s *MetricsServer) Close() error {
	expvarMu.Lock()
	for i, srv := range expvarServers {
		if srv == s {
			expvarServers = append(expvarServers[:i], expvarServers[i+1:]...)
			break
		}
	}
	expvarMu.Unlock()
	return s.srv.Close()
}
